package ecc

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperWidths are the tag and data word widths used throughout the paper.
var paperWidths = []int{26, 32}

func TestSECDEDGeometry(t *testing.T) {
	for _, k := range paperWidths {
		c, err := NewSECDED(k)
		if err != nil {
			t.Fatalf("NewSECDED(%d): %v", k, err)
		}
		if got := c.CheckBits(); got != 7 {
			t.Errorf("k=%d: CheckBits = %d, want the paper's 7", k, got)
		}
		if got := TotalBits(c); got != k+7 {
			t.Errorf("k=%d: TotalBits = %d, want %d", k, got, k+7)
		}
	}
}

func TestSECDEDColumnsOddAndDistinct(t *testing.T) {
	for _, k := range paperWidths {
		c, _ := NewSECDED(k)
		seen := map[uint32]int{}
		for i := 0; i < TotalBits(c); i++ {
			col := c.Column(i)
			if col == 0 {
				t.Fatalf("k=%d: column %d is zero", k, i)
			}
			if bits.OnesCount32(col)%2 == 0 {
				t.Errorf("k=%d: column %d weight %d is even (violates Hsiao construction)",
					k, i, bits.OnesCount32(col))
			}
			if prev, dup := seen[col]; dup {
				t.Errorf("k=%d: columns %d and %d identical (%#x)", k, prev, i, col)
			}
			seen[col] = i
		}
	}
}

func TestSECDEDRowBalance(t *testing.T) {
	// Hsiao's construction balances row weights; the greedy selection
	// must keep max-min row weight within the weight of one column.
	c, _ := NewSECDED(32)
	ws := c.RowWeights()
	minW, maxW := ws[0], ws[0]
	for _, w := range ws {
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}
	if maxW-minW > 3 {
		t.Errorf("row weights %v unbalanced (spread %d > 3)", ws, maxW-minW)
	}
}

func TestSECDEDRoundTripClean(t *testing.T) {
	for _, k := range paperWidths {
		c, _ := NewSECDED(k)
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 2000; trial++ {
			data := rng.Uint64() & DataMask(c)
			got, res := c.Decode(c.Encode(data))
			if res.Status != OK || got != data {
				t.Fatalf("k=%d data=%#x: Decode = (%#x, %+v), want clean round trip", k, data, got, res)
			}
		}
	}
}

func TestSECDEDCorrectsEverySingleError(t *testing.T) {
	for _, k := range paperWidths {
		c, _ := NewSECDED(k)
		rng := rand.New(rand.NewSource(2))
		for trial := 0; trial < 200; trial++ {
			data := rng.Uint64() & DataMask(c)
			cw := c.Encode(data)
			for pos := 0; pos < TotalBits(c); pos++ {
				got, res := c.Decode(cw ^ 1<<uint(pos))
				if res.Status != Corrected || res.Corrected != 1 {
					t.Fatalf("k=%d pos=%d: status %+v, want single correction", k, pos, res)
				}
				if got != data {
					t.Fatalf("k=%d pos=%d: data %#x, want %#x", k, pos, got, data)
				}
			}
		}
	}
}

func TestSECDEDDetectsEveryDoubleError(t *testing.T) {
	for _, k := range paperWidths {
		c, _ := NewSECDED(k)
		rng := rand.New(rand.NewSource(3))
		n := TotalBits(c)
		for trial := 0; trial < 20; trial++ {
			data := rng.Uint64() & DataMask(c)
			cw := c.Encode(data)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					_, res := c.Decode(cw ^ 1<<uint(i) ^ 1<<uint(j))
					if res.Status != Detected {
						t.Fatalf("k=%d errors at (%d,%d): status %v, want Detected (Hsiao guarantees no double-error miscorrection)",
							k, i, j, res.Status)
					}
				}
			}
		}
	}
}

func TestSECDEDCheckBitErrorDoesNotTouchData(t *testing.T) {
	c, _ := NewSECDED(32)
	cw := c.Encode(0xDEADBEEF)
	for j := 0; j < c.CheckBits(); j++ {
		got, res := c.Decode(cw ^ 1<<uint(32+j))
		if res.Status != Corrected || got != 0xDEADBEEF {
			t.Fatalf("check-bit %d error: (%#x, %+v)", j, got, res)
		}
	}
}

func TestSECDEDMinimalGeometries(t *testing.T) {
	cases := []struct{ k, wantR int }{
		{8, 5},
		{16, 6},
		{26, 6},
		{32, 7},
		{64, 8},
	}
	for _, tc := range cases {
		if tc.k+tc.wantR > 64 {
			continue
		}
		c, err := NewSECDEDMinimal(tc.k)
		if err != nil {
			t.Fatalf("NewSECDEDMinimal(%d): %v", tc.k, err)
		}
		if c.CheckBits() != tc.wantR {
			t.Errorf("k=%d: minimal check bits = %d, want %d", tc.k, c.CheckBits(), tc.wantR)
		}
		// Spot-check correction still works at the minimal geometry.
		data := uint64(0x5A5A5A5A5A5A5A5A) & DataMask(c)
		cw := c.Encode(data)
		for pos := 0; pos < TotalBits(c); pos += 3 {
			got, res := c.Decode(cw ^ 1<<uint(pos))
			if res.Status != Corrected || got != data {
				t.Fatalf("k=%d pos=%d: (%#x,%v)", tc.k, pos, got, res.Status)
			}
		}
	}
}

func TestSECDEDRejectsImpossibleGeometry(t *testing.T) {
	if _, err := NewSECDED(58); err == nil {
		t.Error("NewSECDED(58) should fail: codeword would exceed 64 bits")
	}
	// 57 odd-weight 7-bit columns exist, so k=57 is the widest word the
	// fixed 7-check-bit geometry supports within a 64-bit codeword.
	if _, err := NewSECDED(57); err != nil {
		t.Errorf("NewSECDED(57) should succeed: %v", err)
	}
	if _, err := NewSECDED(0); err == nil {
		t.Error("NewSECDED(0) should fail")
	}
}

func TestSECDEDQuickProperties(t *testing.T) {
	c, _ := NewSECDED(32)
	// Property: a round trip through any single-bit fault recovers data.
	prop := func(data uint64, pos uint8) bool {
		data &= DataMask(c)
		p := int(pos) % TotalBits(c)
		got, res := c.Decode(c.Encode(data) ^ 1<<uint(p))
		return got == data && res.Status == Corrected
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
	// Property: encode is systematic (data bits unchanged in codeword).
	sys := func(data uint64) bool {
		data &= DataMask(c)
		return c.Encode(data)&DataMask(c) == data
	}
	if err := quick.Check(sys, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

func TestParityDetectsOddErrors(t *testing.T) {
	c := NewParity(32)
	cw := c.Encode(0x12345678)
	if _, res := c.Decode(cw); res.Status != OK {
		t.Fatalf("clean decode: %v", res.Status)
	}
	for pos := 0; pos < 33; pos++ {
		if _, res := c.Decode(cw ^ 1<<uint(pos)); res.Status != Detected {
			t.Errorf("single error at %d undetected", pos)
		}
	}
	// Double errors are invisible to parity (by design).
	if _, res := c.Decode(cw ^ 0b11); res.Status != OK {
		t.Errorf("double error should be invisible to parity, got %v", res.Status)
	}
}

func TestIdentityCodec(t *testing.T) {
	c := NewIdentity(26)
	if c.CheckBits() != 0 || c.DataBits() != 26 {
		t.Fatalf("identity geometry: %d+%d", c.DataBits(), c.CheckBits())
	}
	data := uint64(0x2FFFFFF)
	got, res := c.Decode(c.Encode(data))
	if got != data&DataMask(c) || res.Status != OK {
		t.Errorf("identity round trip: (%#x, %v)", got, res.Status)
	}
}

func TestNewFactory(t *testing.T) {
	for _, kind := range []Kind{KindNone, KindParity, KindSECDED, KindDECTED} {
		c, err := New(kind, 32)
		if err != nil {
			t.Fatalf("New(%v, 32): %v", kind, err)
		}
		if c.Kind() != kind {
			t.Errorf("New(%v).Kind() = %v", kind, c.Kind())
		}
		if c.CheckBits() != kind.CheckBits() {
			t.Errorf("%v: codec check bits %d != Kind.CheckBits %d", kind, c.CheckBits(), kind.CheckBits())
		}
	}
	if _, err := New(Kind(99), 32); err == nil {
		t.Error("New with invalid kind should fail")
	}
}

func TestKindStringsAndBudgets(t *testing.T) {
	if KindSECDED.CheckBits() != 7 || KindDECTED.CheckBits() != 13 {
		t.Errorf("paper check-bit budgets violated: SECDED=%d DECTED=%d",
			KindSECDED.CheckBits(), KindDECTED.CheckBits())
	}
	if KindSECDED.String() != "SECDED" || KindDECTED.String() != "DECTED" {
		t.Errorf("kind names: %q %q", KindSECDED, KindDECTED)
	}
	if KindDECTED.CorrectableErrors() != 2 || KindDECTED.DetectableErrors() != 3 {
		t.Errorf("DECTED capability: %d/%d", KindDECTED.CorrectableErrors(), KindDECTED.DetectableErrors())
	}
}
