package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// These tests pin down behaviour *beyond* the guaranteed correction/
// detection radii — the failure statistics a cache architect needs when
// deciding whether SECDED or DECTED suffices for a fault environment.

func TestSECDEDBeyondGuaranteeNeverLiesSilently(t *testing.T) {
	// Weight-3 errors exceed SECDED's guarantee: they may be
	// miscorrected (status Corrected with wrong data) but must NEVER
	// decode to wrong data with status OK — the syndrome of any odd
	// non-zero error weight is non-zero.
	c, _ := NewSECDED(32)
	rng := rand.New(rand.NewSource(201))
	n := TotalBits(c)
	mis, detected := 0, 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		data := rng.Uint64() & DataMask(c)
		cw := c.Encode(data)
		// Three distinct positions.
		p := rng.Perm(n)[:3]
		corrupted := cw ^ 1<<uint(p[0]) ^ 1<<uint(p[1]) ^ 1<<uint(p[2])
		got, res := c.Decode(corrupted)
		if res.Status == OK {
			t.Fatalf("weight-3 error decoded as clean (positions %v)", p)
		}
		if res.Status == Corrected && got != data {
			mis++
		}
		if res.Status == Detected {
			detected++
		}
	}
	// Hsiao codes miscorrect a substantial share of triples (that is
	// expected and why DECTED exists for scenario B); both buckets must
	// be populated.
	if mis == 0 {
		t.Error("no triple miscorrections observed — statistics implausible for SECDED")
	}
	if detected == 0 {
		t.Error("no triple detections observed — statistics implausible")
	}
}

func TestDECTEDWeightFourNeverSilentlyOK(t *testing.T) {
	// Weight-4 patterns (beyond TED) may alias, but an even-weight
	// error can never produce status OK with wrong data unless it maps
	// codeword-to-codeword; with d=6 a weight-4 error is never a
	// codeword difference... unless it lands within distance 2 of
	// another codeword, which reports Corrected. Verify: no wrong data
	// with status OK.
	c, _ := NewDECTED(32)
	rng := rand.New(rand.NewSource(202))
	n := TotalBits(c)
	for i := 0; i < 3000; i++ {
		data := rng.Uint64() & DataMask(c)
		cw := c.Encode(data)
		p := rng.Perm(n)[:4]
		corrupted := cw
		for _, pos := range p {
			corrupted ^= 1 << uint(pos)
		}
		got, res := c.Decode(corrupted)
		if res.Status == OK && got != data {
			t.Fatalf("weight-4 error silently decoded to wrong data (positions %v)", p)
		}
	}
}

func TestDECTED26QuickProperty(t *testing.T) {
	// The tag-word codec (26 bits) gets the same ≤2-error property
	// exercise the 32-bit one has.
	c, _ := NewDECTED(26)
	n := TotalBits(c)
	prop := func(data uint64, a, b uint8) bool {
		data &= DataMask(c)
		i, j := int(a)%n, int(b)%n
		got, res := c.Decode(c.Encode(data) ^ 1<<uint(i) ^ 1<<uint(j))
		return got == data && res.Status != Detected
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCodewordsAreClosedUnderXorOfGenerator(t *testing.T) {
	// Linearity: the XOR of two codewords is a codeword (syndrome 0 and
	// clean parity) for both code families.
	s, _ := NewSECDED(32)
	d, _ := NewDECTED(32)
	rng := rand.New(rand.NewSource(203))
	for i := 0; i < 1000; i++ {
		a := rng.Uint64() & DataMask(s)
		b := rng.Uint64() & DataMask(s)
		if _, res := s.Decode(s.Encode(a) ^ s.Encode(b)); res.Status != OK {
			t.Fatalf("SECDED not linear: %#x ^ %#x -> %v", a, b, res.Status)
		}
		if _, res := d.Decode(d.Encode(a) ^ d.Encode(b)); res.Status != OK {
			t.Fatalf("DECTED not linear: %#x ^ %#x -> %v", a, b, res.Status)
		}
	}
}

func TestMinimumDistanceSampling(t *testing.T) {
	// Sampled minimum-distance check: no non-zero data difference may
	// produce a codeword of weight below the design distance (4 for
	// SECDED, 6 for extended DECTED). By linearity it suffices to check
	// weights of codewords of non-zero data.
	s, _ := NewSECDED(32)
	d, _ := NewDECTED(32)
	rng := rand.New(rand.NewSource(204))
	minS, minD := 64, 64
	for i := 0; i < 20000; i++ {
		data := rng.Uint64() & DataMask(s)
		if data == 0 {
			continue
		}
		if w := popcount(s.Encode(data)); w < minS {
			minS = w
		}
		if w := popcount(d.Encode(data)); w < minD {
			minD = w
		}
	}
	// Also sweep all weight-1 and weight-2 data patterns (the likeliest
	// to produce low-weight codewords).
	for i := 0; i < 32; i++ {
		if w := popcount(s.Encode(1 << uint(i))); w < minS {
			minS = w
		}
		if w := popcount(d.Encode(1 << uint(i))); w < minD {
			minD = w
		}
		for j := i + 1; j < 32; j++ {
			v := uint64(1)<<uint(i) | 1<<uint(j)
			if w := popcount(s.Encode(v)); w < minS {
				minS = w
			}
			if w := popcount(d.Encode(v)); w < minD {
				minD = w
			}
		}
	}
	if minS < 4 {
		t.Errorf("SECDED minimum observed codeword weight %d < 4", minS)
	}
	if minD < 6 {
		t.Errorf("DECTED minimum observed codeword weight %d < 6", minD)
	}
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}
