package ecc_test

import (
	"fmt"

	"edcache/internal/ecc"
)

// The paper's scenario-A data word: 32 bits protected by Hsiao SECDED
// (7 check bits). A stuck-at cell flips one stored bit; the decoder
// repairs it transparently.
func ExampleSECDED() {
	codec, _ := ecc.NewSECDED(32)
	word := codec.Encode(0xDEADBEEF)
	faulty := word ^ 1<<5 // hard fault at bit 5
	data, res := codec.Decode(faulty)
	fmt.Printf("%#x %v\n", data, res.Status)
	// Output: 0xdeadbeef corrected
}

// The paper's scenario-B data word: BCH-based DECTED (13 check bits)
// corrects a hard fault and a soft error in the same word.
func ExampleDECTED() {
	codec, _ := ecc.NewDECTED(32)
	word := codec.Encode(0x600DCAFE)
	faulty := word ^ 1<<9 ^ 1<<30 // hard fault + particle strike
	data, res := codec.Decode(faulty)
	fmt.Printf("%#x %v (repaired %d bits)\n", data, res.Status, res.Corrected)
	// Output: 0x600dcafe corrected (repaired 2 bits)
}

// A double error under SECDED is detected, never miscorrected — the
// Hsiao odd-weight-column guarantee.
func ExampleSECDED_doubleError() {
	codec, _ := ecc.NewSECDED(26) // tag-word width
	word := codec.Encode(0x2ABCDEF)
	_, res := codec.Decode(word ^ 0b101)
	fmt.Println(res.Status)
	// Output: detected
}

// New builds the codec the architecture's configuration tables use.
func ExampleNew() {
	codec, _ := ecc.New(ecc.KindDECTED, 32)
	fmt.Println(codec.Name(), codec.CheckBits(), "check bits")
	// Output: BCH-DECTED(45,32) 13 check bits
}
