// Package ecc implements the error detection and correction codes used by
// the hybrid-voltage cache architecture of Maric et al. (DATE 2013):
// Hsiao single-error-correction double-error-detection (SECDED) codes and
// BCH-based double-error-correction triple-error-detection (DECTED) codes,
// at the tag/data word granularities the paper uses (26 and 32 bits).
//
// Codewords are represented as uint64 values. Bit i of the word is
// coordinate i of the codeword: data bits occupy positions [0, DataBits),
// check bits occupy [DataBits, DataBits+CheckBits). All codecs are
// systematic, so the stored data is recoverable by masking even when the
// decoder is bypassed (as the architecture does at HP mode).
package ecc

import "fmt"

// Kind identifies a code family.
type Kind int

const (
	// KindNone is the absence of coding (scenario A baseline).
	KindNone Kind = iota
	// KindParity is single-bit error detection only.
	KindParity
	// KindSECDED is Hsiao single-error-correct double-error-detect.
	KindSECDED
	// KindDECTED is BCH-based double-error-correct triple-error-detect.
	KindDECTED
)

// String returns the conventional name of the code family.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindParity:
		return "parity"
	case KindSECDED:
		return "SECDED"
	case KindDECTED:
		return "DECTED"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// CheckBits returns the number of check bits the paper budgets for this
// code family at tag/data word granularity: 0 for no coding, 1 for parity,
// 7 for SECDED and 13 for DECTED (Section III-C and IV-A of the paper).
func (k Kind) CheckBits() int {
	switch k {
	case KindParity:
		return 1
	case KindSECDED:
		return 7
	case KindDECTED:
		return 13
	default:
		return 0
	}
}

// CorrectableErrors returns the guaranteed per-word correction capability.
func (k Kind) CorrectableErrors() int {
	switch k {
	case KindSECDED:
		return 1
	case KindDECTED:
		return 2
	default:
		return 0
	}
}

// DetectableErrors returns the guaranteed per-word detection capability.
func (k Kind) DetectableErrors() int {
	switch k {
	case KindParity:
		return 1
	case KindSECDED:
		return 2
	case KindDECTED:
		return 3
	default:
		return 0
	}
}

// Status reports the outcome of decoding one codeword.
type Status int

const (
	// OK means the word decoded with no errors present.
	OK Status = iota
	// Corrected means one or more errors were present and repaired.
	Corrected
	// Detected means an uncorrectable error was detected; the returned
	// data must not be trusted.
	Detected
)

// String returns a short human-readable status name.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Result describes the outcome of one Decode call.
type Result struct {
	Status    Status
	Corrected int // number of bit positions repaired
}

// Codec encodes and decodes fixed-width words.
type Codec interface {
	// Name identifies the code, e.g. "Hsiao-SECDED(39,32)".
	Name() string
	// Kind reports the code family.
	Kind() Kind
	// DataBits is the word width k.
	DataBits() int
	// CheckBits is the redundancy r; total codeword length is k+r.
	CheckBits() int
	// Encode returns the systematic codeword for the low DataBits bits
	// of data. Bits of data above DataBits must be zero.
	Encode(data uint64) uint64
	// Decode inspects a (possibly corrupted) codeword, repairs what the
	// code guarantees, and returns the recovered data word.
	Decode(word uint64) (uint64, Result)
}

// TotalBits returns the codeword length of c.
func TotalBits(c Codec) int { return c.DataBits() + c.CheckBits() }

// DataMask returns a mask covering the data bits of c's codewords.
func DataMask(c Codec) uint64 { return (uint64(1) << uint(c.DataBits())) - 1 }

// New builds the codec the architecture uses for a given family and word
// width. KindNone returns the identity codec.
func New(kind Kind, dataBits int) (Codec, error) {
	switch kind {
	case KindNone:
		return NewIdentity(dataBits), nil
	case KindParity:
		return NewParity(dataBits), nil
	case KindSECDED:
		return NewSECDED(dataBits)
	case KindDECTED:
		return NewDECTED(dataBits)
	default:
		return nil, fmt.Errorf("ecc: unknown code kind %v", kind)
	}
}

// MustNew is New, panicking on error. It is intended for configurations
// with compile-time-known parameters.
func MustNew(kind Kind, dataBits int) Codec {
	c, err := New(kind, dataBits)
	if err != nil {
		panic(err)
	}
	return c
}

// Identity is the no-coding codec: Encode and Decode are pass-through and
// no errors are ever detected. It models unprotected words.
type Identity struct{ k int }

// NewIdentity returns an Identity codec for k-bit words (1 ≤ k ≤ 64).
func NewIdentity(k int) *Identity {
	if k < 1 || k > 64 {
		panic(fmt.Sprintf("ecc: identity width %d out of range [1,64]", k))
	}
	return &Identity{k: k}
}

// Name implements Codec.
func (c *Identity) Name() string { return fmt.Sprintf("none(%d)", c.k) }

// Kind implements Codec.
func (c *Identity) Kind() Kind { return KindNone }

// DataBits implements Codec.
func (c *Identity) DataBits() int { return c.k }

// CheckBits implements Codec.
func (c *Identity) CheckBits() int { return 0 }

// Encode implements Codec.
func (c *Identity) Encode(data uint64) uint64 { return data & DataMask(c) }

// Decode implements Codec. It never reports errors.
func (c *Identity) Decode(word uint64) (uint64, Result) {
	return word & DataMask(c), Result{Status: OK}
}
