package ecc

import (
	"fmt"
	"math/bits"
)

// Parity is a single even-parity check bit over a k-bit word: it detects
// any odd number of bit errors and corrects none. It is included both as a
// baseline in the ablation studies and as the extension bit used by the
// DECTED construction.
type Parity struct{ k int }

// NewParity returns a Parity codec for k-bit words (1 ≤ k ≤ 63).
func NewParity(k int) *Parity {
	if k < 1 || k > 63 {
		panic(fmt.Sprintf("ecc: parity width %d out of range [1,63]", k))
	}
	return &Parity{k: k}
}

// Name implements Codec.
func (c *Parity) Name() string { return fmt.Sprintf("parity(%d,%d)", c.k+1, c.k) }

// Kind implements Codec.
func (c *Parity) Kind() Kind { return KindParity }

// DataBits implements Codec.
func (c *Parity) DataBits() int { return c.k }

// CheckBits implements Codec.
func (c *Parity) CheckBits() int { return 1 }

// Encode implements Codec: the check bit makes the codeword even-weight.
func (c *Parity) Encode(data uint64) uint64 {
	d := data & DataMask(c)
	p := uint64(bits.OnesCount64(d) & 1)
	return d | p<<uint(c.k)
}

// Decode implements Codec. A parity violation is reported as Detected;
// the data bits are returned unmodified either way.
func (c *Parity) Decode(word uint64) (uint64, Result) {
	w := word & ((uint64(1) << uint(c.k+1)) - 1)
	data := w & DataMask(c)
	if bits.OnesCount64(w)&1 != 0 {
		return data, Result{Status: Detected}
	}
	return data, Result{Status: OK}
}
