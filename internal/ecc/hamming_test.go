package ecc

import (
	"math/rand"
	"testing"
)

func TestSECGeometry(t *testing.T) {
	cases := []struct{ k, wantR int }{
		{4, 3}, {11, 4}, {26, 5}, {32, 6}, {57, 6},
	}
	for _, tc := range cases {
		c, err := NewSEC(tc.k)
		if err != nil {
			t.Fatalf("NewSEC(%d): %v", tc.k, err)
		}
		if c.CheckBits() != tc.wantR {
			t.Errorf("k=%d: r=%d, want %d", tc.k, c.CheckBits(), tc.wantR)
		}
	}
	if _, err := NewSEC(60); err == nil {
		t.Error("oversized SEC accepted")
	}
	if _, err := NewSEC(0); err == nil {
		t.Error("zero-width SEC accepted")
	}
}

func TestSECCorrectsSingles(t *testing.T) {
	c, _ := NewSEC(32)
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 100; trial++ {
		data := rng.Uint64() & DataMask(c)
		cw := c.Encode(data)
		for pos := 0; pos < TotalBits(c); pos++ {
			got, res := c.Decode(cw ^ 1<<uint(pos))
			if got != data || res.Status != Corrected {
				t.Fatalf("pos %d: (%#x, %v)", pos, got, res.Status)
			}
		}
	}
}

func TestSECMiscorrectsDoubles(t *testing.T) {
	// The hazard SECDED exists to close: plain Hamming SEC treats most
	// double errors as a single error somewhere else and corrupts a
	// third bit. Count the miscorrection rate and compare with Hsiao
	// SECDED's guaranteed zero.
	sec, _ := NewSEC(32)
	secded, _ := NewSECDED(32)
	data := uint64(0xCAFEBABE)
	cwSEC := sec.Encode(data)
	cwSD := secded.Encode(data)

	misSEC, misSD := 0, 0
	for i := 0; i < TotalBits(sec); i++ {
		for j := i + 1; j < TotalBits(sec); j++ {
			if got, res := sec.Decode(cwSEC ^ 1<<uint(i) ^ 1<<uint(j)); res.Status == Corrected && got != data {
				misSEC++
			}
		}
	}
	for i := 0; i < TotalBits(secded); i++ {
		for j := i + 1; j < TotalBits(secded); j++ {
			if got, res := secded.Decode(cwSD ^ 1<<uint(i) ^ 1<<uint(j)); res.Status == Corrected && got != data {
				misSD++
			}
		}
	}
	if misSD != 0 {
		t.Errorf("Hsiao SECDED miscorrected %d double errors; its guarantee is zero", misSD)
	}
	if misSEC == 0 {
		t.Error("plain SEC should miscorrect double errors — the ablation depends on it")
	}
}

func TestInterleavedGeometry(t *testing.T) {
	c, err := NewInterleaved(KindSECDED, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.DataBits() != 32 || c.Lanes() != 4 {
		t.Errorf("geometry: %d data bits, %d lanes", c.DataBits(), c.Lanes())
	}
	// 4 lanes × 7 check bits (fixed SECDED budget).
	if c.CheckBits() != 28 {
		t.Errorf("check bits %d", c.CheckBits())
	}
	if _, err := NewInterleaved(KindSECDED, 32, 4); err == nil {
		t.Error("oversized interleave accepted")
	}
	if _, err := NewInterleaved(KindSECDED, 8, 0); err == nil {
		t.Error("zero lanes accepted")
	}
}

func TestInterleavedRoundTrip(t *testing.T) {
	c, _ := NewInterleaved(KindSECDED, 8, 4)
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 500; trial++ {
		data := rng.Uint64() & DataMask(c)
		got, res := c.Decode(c.Encode(data))
		if got != data || res.Status != OK {
			t.Fatalf("round trip: %#x -> %#x (%v)", data, got, res.Status)
		}
	}
}

func TestInterleavedCorrectsBursts(t *testing.T) {
	// The point of interleaving: a physically contiguous burst of up to
	// N bits is corrected by N single-error corrections, for every
	// burst position.
	c, _ := NewInterleaved(KindSECDED, 8, 4)
	n := TotalBits(c)
	data := uint64(0xDEADBEEF) & DataMask(c)
	cw := c.Encode(data)
	for burstLen := 1; burstLen <= 4; burstLen++ {
		for start := 0; start+burstLen <= n; start++ {
			corrupted := cw
			for b := 0; b < burstLen; b++ {
				corrupted ^= 1 << uint(start+b)
			}
			got, res := c.Decode(corrupted)
			if got != data || res.Status == Detected {
				t.Fatalf("burst len %d at %d: (%#x, %v), want %#x",
					burstLen, start, got, res.Status, data)
			}
			if res.Corrected != burstLen {
				t.Fatalf("burst len %d at %d: corrected %d", burstLen, start, res.Corrected)
			}
		}
	}
}

func TestInterleavedDetectsFiveBitBursts(t *testing.T) {
	// A burst one longer than the interleave degree puts two errors in
	// one lane: SECDED in that lane detects it.
	c, _ := NewInterleaved(KindSECDED, 8, 4)
	data := uint64(0x01020304) & DataMask(c)
	cw := c.Encode(data)
	n := TotalBits(c)
	for start := 0; start+5 <= n; start++ {
		corrupted := cw
		for b := 0; b < 5; b++ {
			corrupted ^= 1 << uint(start+b)
		}
		if _, res := c.Decode(corrupted); res.Status != Detected {
			t.Fatalf("5-bit burst at %d: status %v, want Detected", start, res.Status)
		}
	}
}

func TestPlainSECDEDFailsAdjacentDouble(t *testing.T) {
	// Contrast for the MBU story: non-interleaved SECDED only *detects*
	// an adjacent double — it cannot correct it.
	c, _ := NewSECDED(32)
	cw := c.Encode(0x55AA55AA)
	if _, res := c.Decode(cw ^ 0b11); res.Status != Detected {
		t.Errorf("adjacent double on plain SECDED: %v, want Detected", res.Status)
	}
}
