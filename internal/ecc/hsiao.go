package ecc

import (
	"fmt"
	"math/bits"
	"sort"
)

// SECDED is a Hsiao odd-weight-column single-error-correction,
// double-error-detection code (Chen & Hsiao, IBM JRD 1984 — reference [5]
// of the paper). The parity-check matrix H has one weight-1 column per
// check bit and k distinct odd-weight (weight ≥ 3) columns for the data
// bits, chosen to balance row weights as in Hsiao's construction; balanced
// rows minimise the depth and energy of the XOR trees, which is what the
// energy model in internal/energy assumes.
//
// Properties used by the architecture:
//   - any single-bit error yields a syndrome equal to that bit's (odd
//     weight) column and is corrected;
//   - any double-bit error yields a non-zero even-weight syndrome, which
//     can never match a column, so it is always detected, never
//     miscorrected.
type SECDED struct {
	k int // data bits
	r int // check bits

	// cols[i] is the H column (an r-bit value) of codeword bit i.
	cols []uint32
	// checkMask[j], for check bit j, covers the codeword bits that
	// participate in parity equation j (including check bit j itself).
	checkMask []uint64
	// encodeMask[j] covers only the data bits of equation j.
	encodeMask []uint64
	// posBySyndrome maps a syndrome value to the erroneous bit position.
	posBySyndrome map[uint32]int
}

// NewSECDED constructs a Hsiao SECDED codec for k-bit data words with the
// paper's fixed budget of 7 check bits. Widths up to 64 data bits are
// supported as long as k+7 ≤ 64 and enough odd-weight columns exist.
func NewSECDED(k int) (*SECDED, error) {
	const r = 7
	return newSECDEDWithR(k, r)
}

// NewSECDEDMinimal constructs a Hsiao SECDED codec with the minimal number
// of check bits for k data bits (used by the granularity ablation, where
// the fixed 7-bit budget of the paper would be wasteful for short words).
func NewSECDEDMinimal(k int) (*SECDED, error) {
	for r := 4; r <= 16; r++ {
		if oddColumnCount(r) >= k {
			return newSECDEDWithR(k, r)
		}
	}
	return nil, fmt.Errorf("ecc: no SECDED geometry for %d data bits", k)
}

// oddColumnCount counts odd-weight r-bit columns of weight ≥ 3.
func oddColumnCount(r int) int {
	n := 0
	for w := 3; w <= r; w += 2 {
		n += binomial(r, w)
	}
	return n
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	v := 1
	for i := 0; i < k; i++ {
		v = v * (n - i) / (i + 1)
	}
	return v
}

func newSECDEDWithR(k, r int) (*SECDED, error) {
	if k < 1 {
		return nil, fmt.Errorf("ecc: SECDED data width %d must be positive", k)
	}
	if k+r > 64 {
		return nil, fmt.Errorf("ecc: SECDED codeword length %d exceeds 64", k+r)
	}
	if oddColumnCount(r) < k {
		return nil, fmt.Errorf("ecc: %d check bits admit only %d odd-weight columns, need %d", r, oddColumnCount(r), k)
	}
	c := &SECDED{
		k:             k,
		r:             r,
		cols:          make([]uint32, k+r),
		checkMask:     make([]uint64, r),
		encodeMask:    make([]uint64, r),
		posBySyndrome: make(map[uint32]int, k+r),
	}
	for i, col := range hsiaoColumns(k, r) {
		c.cols[i] = col
	}
	for j := 0; j < r; j++ {
		c.cols[k+j] = 1 << uint(j) // weight-1 columns for check bits
	}
	for i, col := range c.cols {
		for j := 0; j < r; j++ {
			if col&(1<<uint(j)) != 0 {
				c.checkMask[j] |= 1 << uint(i)
				if i < k {
					c.encodeMask[j] |= 1 << uint(i)
				}
			}
		}
		c.posBySyndrome[col] = i
	}
	return c, nil
}

// hsiaoColumns selects k distinct odd-weight (≥3) r-bit columns,
// greedily balancing the per-row weights, lowest weights first.
func hsiaoColumns(k, r int) []uint32 {
	var candidates []uint32
	for w := 3; w <= r; w += 2 {
		candidates = append(candidates, columnsOfWeight(r, w)...)
		if len(candidates) >= k && w >= 3 {
			// Keep collecting whole weight classes so the greedy pass
			// below still has the full lowest class to balance over.
			if len(columnsUpToWeight(r, w)) >= k {
				break
			}
		}
	}
	rowWeight := make([]int, r)
	used := make([]bool, len(candidates))
	cols := make([]uint32, 0, k)
	for len(cols) < k {
		best := -1
		bestScore := 1 << 30
		for i, cand := range candidates {
			if used[i] {
				continue
			}
			// Score: resulting maximum row weight, then sum of squares
			// (spread), then column value for determinism.
			score := 0
			maxW := 0
			for j := 0; j < r; j++ {
				w := rowWeight[j]
				if cand&(1<<uint(j)) != 0 {
					w++
				}
				if w > maxW {
					maxW = w
				}
				score += w * w
			}
			score += maxW << 16
			if score < bestScore {
				bestScore = score
				best = i
			}
		}
		used[best] = true
		col := candidates[best]
		cols = append(cols, col)
		for j := 0; j < r; j++ {
			if col&(1<<uint(j)) != 0 {
				rowWeight[j]++
			}
		}
	}
	return cols
}

func columnsOfWeight(r, w int) []uint32 {
	var out []uint32
	for v := uint32(1); v < 1<<uint(r); v++ {
		if bits.OnesCount32(v) == w {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func columnsUpToWeight(r, w int) []uint32 {
	var out []uint32
	for ww := 3; ww <= w; ww += 2 {
		out = append(out, columnsOfWeight(r, ww)...)
	}
	return out
}

// Name implements Codec.
func (c *SECDED) Name() string {
	return fmt.Sprintf("Hsiao-SECDED(%d,%d)", c.k+c.r, c.k)
}

// Kind implements Codec.
func (c *SECDED) Kind() Kind { return KindSECDED }

// DataBits implements Codec.
func (c *SECDED) DataBits() int { return c.k }

// CheckBits implements Codec.
func (c *SECDED) CheckBits() int { return c.r }

// Encode implements Codec.
func (c *SECDED) Encode(data uint64) uint64 {
	d := data & DataMask(c)
	w := d
	for j := 0; j < c.r; j++ {
		p := uint64(bits.OnesCount64(d&c.encodeMask[j]) & 1)
		w |= p << uint(c.k+j)
	}
	return w
}

// syndrome evaluates all r parity equations over the received word.
func (c *SECDED) syndrome(word uint64) uint32 {
	var s uint32
	for j := 0; j < c.r; j++ {
		if bits.OnesCount64(word&c.checkMask[j])&1 != 0 {
			s |= 1 << uint(j)
		}
	}
	return s
}

// Decode implements Codec. Single errors (in data or check bits) are
// corrected; double errors are always detected thanks to the odd-weight
// column property. Odd-weight syndromes that match no column (≥3 errors)
// are reported as Detected.
func (c *SECDED) Decode(word uint64) (uint64, Result) {
	w := word & ((uint64(1) << uint(c.k+c.r)) - 1)
	s := c.syndrome(w)
	if s == 0 {
		return w & DataMask(c), Result{Status: OK}
	}
	if bits.OnesCount32(s)&1 == 0 {
		// Even-weight non-zero syndrome: guaranteed double-error class.
		return w & DataMask(c), Result{Status: Detected}
	}
	pos, ok := c.posBySyndrome[s]
	if !ok {
		return w & DataMask(c), Result{Status: Detected}
	}
	w ^= 1 << uint(pos)
	return w & DataMask(c), Result{Status: Corrected, Corrected: 1}
}

// Column returns the H-matrix column of codeword bit i (for tests and the
// energy model's XOR-tree gate counts).
func (c *SECDED) Column(i int) uint32 { return c.cols[i] }

// RowWeights returns the number of participants in each parity equation,
// used by the EDC energy model to size the encoder XOR trees.
func (c *SECDED) RowWeights() []int {
	ws := make([]int, c.r)
	for j := 0; j < c.r; j++ {
		ws[j] = bits.OnesCount64(c.checkMask[j])
	}
	return ws
}
