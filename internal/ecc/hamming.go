package ecc

import (
	"fmt"
	"math/bits"
)

// SEC is a plain Hamming single-error-correction code (no double-error
// detection). It is not used by the paper's architecture — SECDED is the
// minimum it considers — but it anchors the code-strength ablation: SEC
// silently miscorrects double errors, which is exactly the hazard the
// Hsiao odd-weight-column construction exists to close.
type SEC struct {
	k    int
	r    int
	cols []uint32
	// checkMask[j] covers the codeword bits in parity equation j.
	checkMask  []uint64
	encodeMask []uint64
	posBySyn   map[uint32]int
}

// NewSEC builds a Hamming SEC codec for k-bit words with the minimal
// number of check bits (2^r ≥ k + r + 1).
func NewSEC(k int) (*SEC, error) {
	if k < 1 {
		return nil, fmt.Errorf("ecc: SEC data width %d must be positive", k)
	}
	r := 2
	for (1<<uint(r))-r-1 < k {
		r++
	}
	if k+r > 64 {
		return nil, fmt.Errorf("ecc: SEC codeword length %d exceeds 64", k+r)
	}
	c := &SEC{
		k:          k,
		r:          r,
		cols:       make([]uint32, k+r),
		checkMask:  make([]uint64, r),
		encodeMask: make([]uint64, r),
		posBySyn:   make(map[uint32]int, k+r),
	}
	// Data columns: the non-power-of-two values 3, 5, 6, 7, 9, … in
	// order; check columns: the powers of two.
	col := uint32(3)
	for i := 0; i < k; i++ {
		for col&(col-1) == 0 {
			col++
		}
		c.cols[i] = col
		col++
	}
	for j := 0; j < r; j++ {
		c.cols[k+j] = 1 << uint(j)
	}
	for i, cc := range c.cols {
		for j := 0; j < r; j++ {
			if cc&(1<<uint(j)) != 0 {
				c.checkMask[j] |= 1 << uint(i)
				if i < k {
					c.encodeMask[j] |= 1 << uint(i)
				}
			}
		}
		c.posBySyn[cc] = i
	}
	return c, nil
}

// Name implements Codec.
func (c *SEC) Name() string { return fmt.Sprintf("Hamming-SEC(%d,%d)", c.k+c.r, c.k) }

// Kind implements Codec. SEC has no dedicated Kind; it reports
// KindParity-level detection via its own capability and is labelled by
// Name. For the architecture's configuration tables only the four main
// kinds exist; SEC is an analysis-only codec.
func (c *SEC) Kind() Kind { return KindSECDED } // closest family; see Name

// DataBits implements Codec.
func (c *SEC) DataBits() int { return c.k }

// CheckBits implements Codec.
func (c *SEC) CheckBits() int { return c.r }

// Encode implements Codec.
func (c *SEC) Encode(data uint64) uint64 {
	d := data & DataMask(c)
	w := d
	for j := 0; j < c.r; j++ {
		p := uint64(bits.OnesCount64(d&c.encodeMask[j]) & 1)
		w |= p << uint(c.k+j)
	}
	return w
}

// Decode implements Codec. Any non-zero syndrome matching a column is
// "corrected" — for double errors this is usually a miscorrection, the
// behaviour the ablation quantifies.
func (c *SEC) Decode(word uint64) (uint64, Result) {
	w := word & ((uint64(1) << uint(c.k+c.r)) - 1)
	var s uint32
	for j := 0; j < c.r; j++ {
		if bits.OnesCount64(w&c.checkMask[j])&1 != 0 {
			s |= 1 << uint(j)
		}
	}
	if s == 0 {
		return w & DataMask(c), Result{Status: OK}
	}
	if pos, ok := c.posBySyn[s]; ok {
		w ^= 1 << uint(pos)
		return w & DataMask(c), Result{Status: Corrected, Corrected: 1}
	}
	return w & DataMask(c), Result{Status: Detected}
}

// Interleaved wraps N copies of an inner codec over an N·k-bit word,
// bit-interleaving the codewords in storage: physical bit p belongs to
// lane p mod N. A burst (multi-bit upset) of up to N physically adjacent
// bits lands in N distinct lanes, one bit each, so a single-error-
// correcting inner code repairs the whole burst — the standard SRAM
// defence against multi-cell upsets, and the natural extension of the
// paper's architecture to MBU-prone nodes (future-work territory the
// ablation A4 explores).
type Interleaved struct {
	inner []Codec
	n     int
	k     int // total data bits = n · inner.DataBits
}

// NewInterleaved builds an N-lane interleaved codec. All lanes use the
// same code family and width; total codeword length must fit in 64 bits.
func NewInterleaved(kind Kind, laneDataBits, lanes int) (*Interleaved, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("ecc: %d interleave lanes", lanes)
	}
	inner := make([]Codec, lanes)
	for i := range inner {
		c, err := New(kind, laneDataBits)
		if err != nil {
			return nil, err
		}
		inner[i] = c
	}
	total := lanes * TotalBits(inner[0])
	if total > 64 {
		return nil, fmt.Errorf("ecc: interleaved codeword length %d exceeds 64", total)
	}
	return &Interleaved{inner: inner, n: lanes, k: lanes * laneDataBits}, nil
}

// Name implements Codec.
func (c *Interleaved) Name() string {
	return fmt.Sprintf("%dx-interleaved %s", c.n, c.inner[0].Name())
}

// Kind implements Codec.
func (c *Interleaved) Kind() Kind { return c.inner[0].Kind() }

// DataBits implements Codec.
func (c *Interleaved) DataBits() int { return c.k }

// CheckBits implements Codec.
func (c *Interleaved) CheckBits() int { return c.n * c.inner[0].CheckBits() }

// Lanes returns the interleave degree (the burst length it tolerates).
func (c *Interleaved) Lanes() int { return c.n }

// Encode implements Codec: lane i receives data bits i, i+n, i+2n, …,
// and the lane codewords are re-interleaved bit by bit.
func (c *Interleaved) Encode(data uint64) uint64 {
	data &= DataMask(c)
	laneLen := TotalBits(c.inner[0])
	var out uint64
	for lane := 0; lane < c.n; lane++ {
		var laneData uint64
		for i := 0; i < c.inner[lane].DataBits(); i++ {
			bit := (data >> uint(lane+i*c.n)) & 1
			laneData |= bit << uint(i)
		}
		cw := c.inner[lane].Encode(laneData)
		for i := 0; i < laneLen; i++ {
			bit := (cw >> uint(i)) & 1
			out |= bit << uint(lane+i*c.n)
		}
	}
	return out
}

// Decode implements Codec: each lane decodes independently; the word's
// status is the worst lane status and corrections accumulate.
func (c *Interleaved) Decode(word uint64) (uint64, Result) {
	laneLen := TotalBits(c.inner[0])
	var data uint64
	res := Result{Status: OK}
	for lane := 0; lane < c.n; lane++ {
		var cw uint64
		for i := 0; i < laneLen; i++ {
			bit := (word >> uint(lane+i*c.n)) & 1
			cw |= bit << uint(i)
		}
		d, r := c.inner[lane].Decode(cw)
		for i := 0; i < c.inner[lane].DataBits(); i++ {
			bit := (d >> uint(i)) & 1
			data |= bit << uint(lane+i*c.n)
		}
		res.Corrected += r.Corrected
		if r.Status == Detected {
			res.Status = Detected
		} else if r.Status == Corrected && res.Status != Detected {
			res.Status = Corrected
		}
	}
	return data, res
}
