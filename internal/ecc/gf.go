package ecc

import "fmt"

// Field is a binary extension field GF(2^m) represented with log/antilog
// tables over a primitive polynomial. It is sized for the BCH codes used
// by the DECTED construction (m = 6, so positions up to n = 63 exist, more
// than enough for 32+12-bit shortened codewords).
type Field struct {
	m    int
	n    int // 2^m - 1, the multiplicative order
	poly uint32
	exp  []uint16 // exp[i] = α^i, i in [0, 2n)
	log  []int    // log[x] = i with α^i = x, defined for x in [1, 2^m)
}

// NewField builds GF(2^m) from the given primitive polynomial (with the
// leading x^m term included, e.g. 0b1000011 = x^6+x+1 for m=6).
func NewField(m int, poly uint32) (*Field, error) {
	if m < 2 || m > 16 {
		return nil, fmt.Errorf("ecc: field degree %d out of range [2,16]", m)
	}
	if poly>>uint(m) != 1 {
		return nil, fmt.Errorf("ecc: polynomial %#x is not monic of degree %d", poly, m)
	}
	f := &Field{
		m:    m,
		n:    (1 << uint(m)) - 1,
		poly: poly,
		exp:  make([]uint16, 2*((1<<uint(m))-1)),
		log:  make([]int, 1<<uint(m)),
	}
	x := uint32(1)
	for i := 0; i < f.n; i++ {
		if x == 1 && i != 0 {
			return nil, fmt.Errorf("ecc: polynomial %#x is not primitive for GF(2^%d)", poly, m)
		}
		f.exp[i] = uint16(x)
		f.log[x] = i
		x <<= 1
		if x>>uint(m) != 0 {
			x ^= poly
		}
	}
	for i := f.n; i < 2*f.n; i++ {
		f.exp[i] = f.exp[i-f.n]
	}
	return f, nil
}

// M returns the field degree m.
func (f *Field) M() int { return f.m }

// N returns the multiplicative order 2^m - 1.
func (f *Field) N() int { return f.n }

// Alpha returns α^i for any non-negative i.
func (f *Field) Alpha(i int) uint16 { return f.exp[i%f.n] }

// Log returns the discrete logarithm of x; x must be non-zero.
func (f *Field) Log(x uint16) int {
	if x == 0 {
		panic("ecc: log of zero field element")
	}
	return f.log[x]
}

// Mul multiplies two field elements.
func (f *Field) Mul(a, b uint16) uint16 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Div returns a/b; b must be non-zero.
func (f *Field) Div(a, b uint16) uint16 {
	if b == 0 {
		panic("ecc: division by zero field element")
	}
	if a == 0 {
		return 0
	}
	return f.exp[f.log[a]-f.log[b]+f.n]
}

// Inv returns the multiplicative inverse of a non-zero element.
func (f *Field) Inv(a uint16) uint16 {
	if a == 0 {
		panic("ecc: inverse of zero field element")
	}
	return f.exp[f.n-f.log[a]]
}

// Pow returns a^e (with 0^0 = 1).
func (f *Field) Pow(a uint16, e int) uint16 {
	if a == 0 {
		if e == 0 {
			return 1
		}
		return 0
	}
	le := (f.log[a] * e) % f.n
	if le < 0 {
		le += f.n
	}
	return f.exp[le]
}

// MinimalPoly computes the minimal polynomial over GF(2) of α^e as a bit
// vector (bit i = coefficient of x^i). It multiplies (x - α^(e·2^j)) over
// the conjugacy class of e.
func (f *Field) MinimalPoly(e int) uint64 {
	// Collect the conjugacy class {e, 2e, 4e, ...} mod n.
	class := []int{}
	seen := map[int]bool{}
	for c := e % f.n; !seen[c]; c = (2 * c) % f.n {
		seen[c] = true
		class = append(class, c)
	}
	// poly is a polynomial with GF(2^m) coefficients, poly[i] = coeff of x^i.
	poly := []uint16{1}
	for _, c := range class {
		root := f.Alpha(c)
		next := make([]uint16, len(poly)+1)
		for i, coef := range poly {
			next[i+1] ^= coef            // x * poly
			next[i] ^= f.Mul(coef, root) // root * poly
		}
		poly = next
	}
	var bits uint64
	for i, coef := range poly {
		if coef > 1 {
			panic("ecc: minimal polynomial has non-binary coefficient")
		}
		if coef == 1 {
			bits |= 1 << uint(i)
		}
	}
	return bits
}

// polyMulGF2 multiplies two GF(2) polynomials in bit-vector form.
func polyMulGF2(a, b uint64) uint64 {
	var out uint64
	for i := 0; i < 64 && b>>uint(i) != 0; i++ {
		if b&(1<<uint(i)) != 0 {
			out ^= a << uint(i)
		}
	}
	return out
}

// polyDeg returns the degree of a GF(2) polynomial (-1 for the zero poly).
func polyDeg(p uint64) int {
	d := -1
	for p != 0 {
		d++
		p >>= 1
	}
	return d
}

// polyModGF2 reduces a modulo m over GF(2).
func polyModGF2(a, m uint64) uint64 {
	dm := polyDeg(m)
	for {
		da := polyDeg(a)
		if da < dm {
			return a
		}
		a ^= m << uint(da-dm)
	}
}
