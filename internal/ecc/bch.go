package ecc

import (
	"fmt"
	"math/bits"
)

// primPolyGF64 is x^6 + x + 1, the primitive polynomial the codec uses
// for GF(2^6); length-63 BCH codes built on it comfortably host the
// paper's 26- and 32-bit words after shortening.
const primPolyGF64 = 0x43

// DECTED is a double-error-correction, triple-error-detection code built
// as a shortened binary BCH code with designed distance 5 (t = 2) over
// GF(2^6), extended with one overall parity bit. For 32-bit data words
// this yields 2·6 = 12 BCH check bits plus the parity bit — the 13 check
// bits the paper budgets for DECTED words (Section III-C).
//
// Codeword layout (bit i of the uint64):
//
//	[0, k)        data bits        (BCH coefficients x^(12+i))
//	[k, k+12)     BCH check bits   (BCH coefficients x^j)
//	k+12          overall parity bit (not a BCH coefficient)
//
// Decoding uses syndromes S1 = r(α), S3 = r(α^3), a closed-form degree-2
// error locator, Chien search over the shortened positions, and the
// parity bit to separate even from odd error weights, giving DEC-TED with
// no miscorrection for any weight ≤ 3 pattern.
type DECTED struct {
	k      int // data bits
	rBCH   int // BCH check bits (12)
	nShort int // BCH codeword coefficients in use (k + 12)
	field  *Field
	gen    uint64 // generator polynomial g(x) = m1(x)·m3(x) over GF(2)

	// alphaPow[e][c] caches α^(e·c) for syndrome evaluation, e ∈ {1,3}.
	alpha1 []uint16
	alpha3 []uint16
}

// NewDECTED constructs the DECTED codec for k-bit data words
// (1 ≤ k ≤ 51, so the shortened length fits in the length-63 BCH code).
func NewDECTED(k int) (*DECTED, error) {
	if k < 1 {
		return nil, fmt.Errorf("ecc: DECTED data width %d must be positive", k)
	}
	f, err := NewField(6, primPolyGF64)
	if err != nil {
		return nil, err
	}
	const rBCH = 12
	if k+rBCH > f.N() {
		return nil, fmt.Errorf("ecc: DECTED data width %d exceeds BCH(63) capacity (max 51)", k)
	}
	if k+rBCH+1 > 64 {
		return nil, fmt.Errorf("ecc: DECTED codeword for %d data bits exceeds 64 bits", k)
	}
	m1 := f.MinimalPoly(1)
	m3 := f.MinimalPoly(3)
	gen := polyMulGF2(m1, m3)
	if polyDeg(gen) != rBCH {
		return nil, fmt.Errorf("ecc: BCH generator degree %d, want %d", polyDeg(gen), rBCH)
	}
	c := &DECTED{
		k:      k,
		rBCH:   rBCH,
		nShort: k + rBCH,
		field:  f,
		gen:    gen,
		alpha1: make([]uint16, k+rBCH),
		alpha3: make([]uint16, k+rBCH),
	}
	for p := 0; p < c.nShort; p++ {
		c.alpha1[p] = f.Alpha(p)
		c.alpha3[p] = f.Alpha(3 * p)
	}
	return c, nil
}

// Name implements Codec.
func (c *DECTED) Name() string {
	return fmt.Sprintf("BCH-DECTED(%d,%d)", c.k+c.rBCH+1, c.k)
}

// Kind implements Codec.
func (c *DECTED) Kind() Kind { return KindDECTED }

// DataBits implements Codec.
func (c *DECTED) DataBits() int { return c.k }

// CheckBits implements Codec. This includes the overall parity bit.
func (c *DECTED) CheckBits() int { return c.rBCH + 1 }

// coeffOf maps a codeword bit position to its BCH polynomial coefficient.
func (c *DECTED) coeffOf(bit int) int {
	if bit < c.k {
		return c.rBCH + bit
	}
	return bit - c.k
}

// bitOf maps a BCH polynomial coefficient to its codeword bit position.
func (c *DECTED) bitOf(coeff int) int {
	if coeff < c.rBCH {
		return c.k + coeff
	}
	return coeff - c.rBCH
}

// Encode implements Codec.
func (c *DECTED) Encode(data uint64) uint64 {
	d := data & DataMask(c)
	// Data bit i is coefficient x^(12+i), so the message-times-x^r
	// polynomial is simply d shifted up by rBCH.
	dpoly := d << uint(c.rBCH)
	rem := polyModGF2(dpoly, c.gen)
	// Pack: data stays at [0,k); check coefficients [0,12) land at [k,k+12).
	w := d | rem<<uint(c.k)
	p := uint64(bits.OnesCount64(w) & 1)
	return w | p<<uint(c.k+c.rBCH)
}

// syndromes evaluates S1 = r(α) and S3 = r(α³) over the BCH part of the
// received word.
func (c *DECTED) syndromes(w uint64) (s1, s3 uint16) {
	for rest := w; rest != 0; {
		bit := bits.TrailingZeros64(rest)
		rest &= rest - 1
		p := c.coeffOf(bit)
		s1 ^= c.alpha1[p]
		s3 ^= c.alpha3[p]
	}
	return s1, s3
}

// Decode implements Codec.
func (c *DECTED) Decode(word uint64) (uint64, Result) {
	total := c.k + c.rBCH + 1
	w := word & ((uint64(1) << uint(total)) - 1)
	bchPart := w & ((uint64(1) << uint(c.k+c.rBCH)) - 1)
	s1, s3 := c.syndromes(bchPart)
	parityOdd := bits.OnesCount64(w)&1 != 0

	if s1 == 0 && s3 == 0 {
		if !parityOdd {
			return w & DataMask(c), Result{Status: OK}
		}
		// Clean BCH syndromes with odd parity: the parity bit itself
		// flipped.
		return w & DataMask(c), Result{Status: Corrected, Corrected: 1}
	}

	f := c.field
	// Single-error hypothesis: S3 == S1³ with S1 ≠ 0.
	if s1 != 0 && s3 == f.Mul(f.Mul(s1, s1), s1) {
		pos := f.Log(s1)
		if pos >= c.nShort {
			// The located coefficient lies in the shortened (always
			// zero) region: impossible for ≤2 real errors there, so the
			// pattern has weight ≥ 3.
			return w & DataMask(c), Result{Status: Detected}
		}
		bit := c.bitOf(pos)
		if parityOdd {
			// One error in the BCH part.
			w ^= 1 << uint(bit)
			return w & DataMask(c), Result{Status: Corrected, Corrected: 1}
		}
		// Even parity with a single-error-consistent syndrome: one BCH
		// error plus a flipped parity bit (two errors total).
		w ^= 1 << uint(bit)
		w ^= 1 << uint(c.k+c.rBCH)
		return w & DataMask(c), Result{Status: Corrected, Corrected: 2}
	}

	if parityOdd {
		// Odd error weight that is not a correctable single error: at
		// least three errors.
		return w & DataMask(c), Result{Status: Detected}
	}
	if s1 == 0 {
		// Two errors always give S1 = α^i + α^j ≠ 0; S1 = 0 with S3 ≠ 0
		// means weight ≥ 4 (even) — detected.
		return w & DataMask(c), Result{Status: Detected}
	}

	// Double-error hypothesis: error locator Λ(x) = 1 + σ1·x + σ2·x² with
	// σ1 = S1 and σ2 = (S3 + S1³)/S1.
	sigma1 := s1
	sigma2 := f.Div(s3^f.Mul(f.Mul(s1, s1), s1), s1)
	var roots []int
	for p := 0; p < c.nShort; p++ {
		// Test Λ(α^{-p}) = 0  ⇔  1 + σ1·α^{-p} + σ2·α^{-2p} = 0.
		xinv := f.Alpha(f.N() - p%f.N())
		if p == 0 {
			xinv = 1
		}
		v := uint16(1) ^ f.Mul(sigma1, xinv) ^ f.Mul(sigma2, f.Mul(xinv, xinv))
		if v == 0 {
			roots = append(roots, p)
			if len(roots) > 2 {
				break
			}
		}
	}
	if len(roots) != 2 {
		return w & DataMask(c), Result{Status: Detected}
	}
	for _, p := range roots {
		w ^= 1 << uint(c.bitOf(p))
	}
	return w & DataMask(c), Result{Status: Corrected, Corrected: 2}
}

// Generator returns the BCH generator polynomial as a GF(2) bit vector
// (exposed for tests and documentation).
func (c *DECTED) Generator() uint64 { return c.gen }
