package yield_test

import (
	"fmt"

	"edcache/internal/yield"
)

// The paper's Section III-C example: a 99 % yield target over the ULE
// way's 8192 data bits requires a per-bit hard-fault rate of 1.22e-6.
func ExampleRequiredPfBits() {
	pf := yield.RequiredPfBits(0.99, 8192)
	fmt.Printf("Pf = %.2e\n", pf)
	// Output: Pf = 1.23e-06
}

// Eq. (1) of the paper: survival of a 39-bit SECDED word that may
// dedicate one correction to a hard fault.
func ExampleWordSurvival() {
	p := yield.WordSurvival(1e-4, 39, 1)
	fmt.Printf("%.6f\n", p)
	// Output: 0.999993
}

// Run executes the full Fig. 2 design methodology for the paper's
// configuration: it sizes the baseline 10T cell for fault-free 350 mV
// operation and iterates the 8T cell until the SECDED-protected yield
// matches.
func ExampleRun() {
	res, _ := yield.Run(yield.PaperInput(yield.ScenarioA))
	fmt.Printf("10T %v  8T %v  (plain 8T feasible: %v)\n",
		res.BaselineCell, res.ProposedCell, res.UncodedFeasible)
	// Output: 10T 10T(x2.60)  8T 8T(x1.20)  (plain 8T feasible: false)
}
