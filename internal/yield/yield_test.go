package yield

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWordSurvivalDegenerateCases(t *testing.T) {
	if got := WordSurvival(0, 39, 0); got != 1 {
		t.Errorf("Pf=0: survival %g, want 1", got)
	}
	if got := WordSurvival(1, 39, 0); got != 0 {
		t.Errorf("Pf=1, tol=0: survival %g, want 0", got)
	}
	if got := WordSurvival(1, 1, 1); got != 1 {
		t.Errorf("Pf=1, 1 bit, tol=1: survival %g, want 1", got)
	}
}

func TestWordSurvivalMatchesDirectFormula(t *testing.T) {
	// Eq. (1) with tol=1 against a directly-coded version.
	for _, pf := range []float64{1e-3, 1e-5, 1e-7} {
		for _, n := range []int{33, 39, 45} {
			got := WordSurvival(pf, n, 1)
			direct := math.Pow(1-pf, float64(n)) +
				float64(n)*pf*math.Pow(1-pf, float64(n-1))
			if math.Abs(got-direct)/direct > 1e-12 {
				t.Errorf("pf=%g n=%d: %g vs direct %g", pf, n, got, direct)
			}
		}
	}
}

func TestWordSurvivalMonotonicity(t *testing.T) {
	// More tolerable faults → higher survival; higher Pf → lower.
	for _, pf := range []float64{1e-6, 1e-4, 1e-2} {
		if WordSurvival(pf, 39, 1) < WordSurvival(pf, 39, 0) {
			t.Errorf("pf=%g: tol=1 survival below tol=0", pf)
		}
	}
	prev := 1.0
	for _, pf := range []float64{1e-8, 1e-6, 1e-4, 1e-2, 0.1} {
		s := WordSurvival(pf, 39, 1)
		if s > prev {
			t.Errorf("survival increased with Pf at %g", pf)
		}
		prev = s
	}
}

func TestRequiredPfBitsPaperExample(t *testing.T) {
	// The paper, Section III-C: "to have a 99% yield for an 8KB cache,
	// faulty bit rate Pf must be 1.22e-6" — the figure corresponds to
	// the 8192 data bits of the 1 KB ULE way.
	pf := RequiredPfBits(0.99, 8192)
	if math.Abs(pf-1.22e-6)/1.22e-6 > 0.01 {
		t.Errorf("RequiredPfBits(0.99, 8192) = %.4g, want 1.22e-6 ±1%%", pf)
	}
	// Round trip: (1-pf)^bits == 0.99.
	y := math.Exp(8192 * math.Log1p(-pf))
	if math.Abs(y-0.99) > 1e-9 {
		t.Errorf("round trip yield %g", y)
	}
}

func TestRequiredPfWayInvertsWaySurvival(t *testing.T) {
	g := PaperWay()
	for _, tc := range []struct {
		check, tol int
		target     float64
	}{
		{0, 0, 0.99},
		{7, 1, 0.99},
		{13, 1, 0.995},
	} {
		pf := RequiredPfWay(tc.target, g, tc.check, tc.check, tc.tol)
		got := WaySurvival(pf, g, tc.check, tc.check, tc.tol)
		if math.Abs(got-tc.target) > 1e-6 {
			t.Errorf("check=%d tol=%d: WaySurvival(RequiredPfWay) = %g, want %g",
				tc.check, tc.tol, got, tc.target)
		}
	}
}

func TestSECDEDRelaxesPfByOrdersOfMagnitude(t *testing.T) {
	// The whole point of the architecture: tolerating one hard fault
	// per word relaxes the per-bit Pf requirement enough that small 8T
	// cells suffice. Quantify: factor of > 3 relaxation at 99 % yield.
	g := PaperWay()
	pfPlain := RequiredPfWay(0.99, g, 0, 0, 0)
	pfSECDED := RequiredPfWay(0.99, g, 7, 7, 1)
	if pfSECDED < 3*pfPlain {
		t.Errorf("SECDED relaxation too small: plain %.3g vs SECDED %.3g", pfPlain, pfSECDED)
	}
}

func TestPaperWayGeometry(t *testing.T) {
	g := PaperWay()
	if g.DataWords() != 256 {
		t.Errorf("ULE way data words = %d, want 256 (1 KB / 32-bit words)", g.DataWords())
	}
	if g.TagWords() != 32 {
		t.Errorf("ULE way tag words = %d, want 32", g.TagWords())
	}
	if g.PayloadBits() != 8192+832 {
		t.Errorf("payload bits = %d", g.PayloadBits())
	}
	if g.TotalBits(7, 7) != 256*39+32*33 {
		t.Errorf("total bits with SECDED = %d", g.TotalBits(7, 7))
	}
}

func TestMethodologyScenarioA(t *testing.T) {
	res, err := Run(PaperInput(ScenarioA))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PfTarget-1.22e-6)/1.22e-6 > 0.01 {
		t.Errorf("PfTarget = %.4g, want the paper's 1.22e-6", res.PfTarget)
	}
	if res.HPCell.Topo.String() != "6T" || res.HPCell.Size != 1.0 {
		t.Errorf("HP cell %v, want minimum-size 6T", res.HPCell)
	}
	if res.BaselineCell.Size < 2.2 || res.BaselineCell.Size > 3.2 {
		t.Errorf("baseline 10T size %.2f outside [2.2, 3.2]", res.BaselineCell.Size)
	}
	if res.ProposedCell.Size < 1.0 || res.ProposedCell.Size > 1.7 {
		t.Errorf("proposed 8T size %.2f outside [1.0, 1.7]", res.ProposedCell.Size)
	}
	if res.ProposedCell.Size >= res.BaselineCell.Size {
		t.Error("proposed 8T cell should be smaller than baseline 10T cell")
	}
	if res.ProposedYield < res.BaselineYield {
		t.Errorf("proposed yield %.6f below baseline %.6f — methodology contract violated",
			res.ProposedYield, res.BaselineYield)
	}
	if res.BaselineYield < 0.99 {
		t.Errorf("baseline yield %.6f below the 99%% target", res.BaselineYield)
	}
	if res.UncodedFeasible {
		t.Error("plain 8T met the fault-free target — contradicts the paper's premise")
	}
	if len(res.Iterations) < 2 {
		t.Errorf("expected the Fig. 2 loop to iterate, got %d passes", len(res.Iterations))
	}
	for i, it := range res.Iterations {
		wantMet := i == len(res.Iterations)-1
		if it.Met != wantMet {
			t.Errorf("iteration %d Met=%v, want %v", i, it.Met, wantMet)
		}
	}
}

func TestMethodologyScenarioB(t *testing.T) {
	a, err := Run(PaperInput(ScenarioA))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(PaperInput(ScenarioB))
	if err != nil {
		t.Fatal(err)
	}
	// Scenario B's words are longer (DECTED 13 check bits, and the
	// baseline's SECDED bits must also be fault-free), so its cells are
	// at least as large as scenario A's.
	if b.ProposedCell.Size < a.ProposedCell.Size {
		t.Errorf("scenario B 8T size %.2f below scenario A %.2f", b.ProposedCell.Size, a.ProposedCell.Size)
	}
	if b.BaselineYield > a.BaselineYield {
		t.Errorf("scenario B baseline yield %.6f above scenario A %.6f (extra SECDED bits must cost yield)",
			b.BaselineYield, a.BaselineYield)
	}
	if b.ProposedYield < b.BaselineYield {
		t.Error("scenario B proposed yield below its baseline")
	}
	if b.Input.Scenario.ProposedCode().CheckBits() != 13 {
		t.Error("scenario B must use DECTED (13 check bits)")
	}
}

func TestMethodologyInputValidation(t *testing.T) {
	in := PaperInput(ScenarioA)
	in.TargetYield = 1.5
	if _, err := Run(in); err == nil {
		t.Error("invalid yield accepted")
	}
	in = PaperInput(ScenarioA)
	in.VccULE = 1.2
	if _, err := Run(in); err == nil {
		t.Error("ULE voltage above HP accepted")
	}
	in = PaperInput(ScenarioA)
	in.Way.Lines = 0
	if _, err := Run(in); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestScenarioCodeMapping(t *testing.T) {
	if ScenarioA.BaselineCode().String() != "none" || ScenarioA.ProposedCode().String() != "SECDED" {
		t.Errorf("scenario A codes: %v/%v", ScenarioA.BaselineCode(), ScenarioA.ProposedCode())
	}
	if ScenarioB.BaselineCode().String() != "SECDED" || ScenarioB.ProposedCode().String() != "DECTED" {
		t.Errorf("scenario B codes: %v/%v", ScenarioB.BaselineCode(), ScenarioB.ProposedCode())
	}
	if ScenarioA.String() != "A" || ScenarioB.String() != "B" {
		t.Errorf("scenario names: %v %v", ScenarioA, ScenarioB)
	}
}

func TestWaySurvivalQuickProperties(t *testing.T) {
	g := PaperWay()
	// Property: survival in [0,1] and adding check bits with tol=0
	// never helps (more bits that must be clean).
	prop := func(pfExp uint8) bool {
		pf := math.Pow(10, -1-float64(pfExp%8))
		plain := WaySurvival(pf, g, 0, 0, 0)
		coded0 := WaySurvival(pf, g, 7, 7, 0)
		coded1 := WaySurvival(pf, g, 7, 7, 1)
		return plain >= 0 && plain <= 1 && coded0 <= plain && coded1 >= plain
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
