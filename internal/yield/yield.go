// Package yield implements the yield mathematics of the paper: the
// per-word survival probability of Eq. (1), the cache-level yield of
// Eq. (2), the required-Pf solver behind the paper's "99 % yield for an
// 8 KB cache ⇒ Pf = 1.22e-6" example, and the complete Fig. 2 design
// methodology that sizes the baseline 10T and the proposed 8T+EDC cells.
package yield

import (
	"fmt"
	"math"
)

// WordSurvival evaluates Eq. (1) of the paper: the probability that a
// protected word of totalBits = n+k bits (n payload bits plus k check
// bits) contains at most `tolerable` hard-faulty bits,
//
//	P = Σ_{i=0}^{tolerable} C(n+k, i) · Pf^i · (1−Pf)^(n+k−i).
//
// tolerable is 0 for unprotected or soft-error-reserved words, 1 when the
// code can dedicate a correction to a hard fault (SECDED in scenario A,
// DECTED in scenario B).
func WordSurvival(pf float64, totalBits, tolerable int) float64 {
	if pf < 0 || pf > 1 {
		panic(fmt.Sprintf("yield: Pf %g outside [0,1]", pf))
	}
	if tolerable < 0 || totalBits <= 0 {
		panic("yield: invalid word geometry")
	}
	sum := 0.0
	for i := 0; i <= tolerable && i <= totalBits; i++ {
		sum += binomPMF(totalBits, i, pf)
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// binomPMF computes C(n,i)·p^i·(1−p)^(n−i) in log space for robustness at
// the tiny probabilities the methodology works with.
func binomPMF(n, i int, p float64) float64 {
	if p == 0 {
		if i == 0 {
			return 1
		}
		return 0
	}
	if p == 1 {
		if i == n {
			return 1
		}
		return 0
	}
	lg := lnChoose(n, i) + float64(i)*math.Log(p) + float64(n-i)*math.Log1p(-p)
	return math.Exp(lg)
}

func lnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}

// WayGeometry describes the protected storage of one cache way at the
// word granularity the paper uses (data words of 32 bits, tag words of
// 26 bits; Section III-C).
type WayGeometry struct {
	Lines        int // cache lines in the way
	WordsPerLine int // data words per line
	DataBits     int // payload bits per data word (paper: 32)
	TagBits      int // payload bits per tag word (paper: 26)
}

// DataWords returns DW of Eq. (2) for this way.
func (g WayGeometry) DataWords() int { return g.Lines * g.WordsPerLine }

// TagWords returns TW of Eq. (2) for this way (one tag word per line).
func (g WayGeometry) TagWords() int { return g.Lines }

// PayloadBits returns the total payload (non-check) bits of the way.
func (g WayGeometry) PayloadBits() int {
	return g.DataWords()*g.DataBits + g.TagWords()*g.TagBits
}

// TotalBits returns total stored bits including per-word check bits.
func (g WayGeometry) TotalBits(dataCheck, tagCheck int) int {
	return g.DataWords()*(g.DataBits+dataCheck) + g.TagWords()*(g.TagBits+tagCheck)
}

// Validate reports whether the geometry is usable.
func (g WayGeometry) Validate() error {
	if g.Lines <= 0 || g.WordsPerLine <= 0 || g.DataBits <= 0 || g.TagBits <= 0 {
		return fmt.Errorf("yield: invalid way geometry %+v", g)
	}
	return nil
}

// WaySurvival evaluates Eq. (2) for one way: the probability that every
// data word and every tag word is usable given per-bit fault rate pf,
// per-word check bits, and per-word tolerable hard faults.
func WaySurvival(pf float64, g WayGeometry, dataCheck, tagCheck, tolerable int) float64 {
	pd := WordSurvival(pf, g.DataBits+dataCheck, tolerable)
	pt := WordSurvival(pf, g.TagBits+tagCheck, tolerable)
	// P(data)^DW · P(tag)^TW, in log space: word counts are small enough
	// that direct exponentiation is fine, but stay in logs for tiny pf
	// complements at large caches.
	lg := float64(g.DataWords())*math.Log(pd) + float64(g.TagWords())*math.Log(pt)
	return math.Exp(lg)
}

// RequiredPfBits inverts the fault-free yield equation Y = (1−Pf)^bits
// for a flat array of the given number of bits. For the paper's example —
// 99 % yield over the 8192 data bits of the 1 KB ULE way — it returns
// Pf = 1.22e-6 (Section III-C).
func RequiredPfBits(targetYield float64, bits int) float64 {
	if targetYield <= 0 || targetYield >= 1 {
		panic(fmt.Sprintf("yield: target yield %g outside (0,1)", targetYield))
	}
	if bits <= 0 {
		panic("yield: bits must be positive")
	}
	// 1 − Y^(1/bits), computed stably: −expm1(ln(Y)/bits).
	return -math.Expm1(math.Log(targetYield) / float64(bits))
}

// RequiredPfWay solves for the largest per-bit Pf at which the way still
// meets the target yield under Eq. (1)/(2), by bisection on log10(Pf).
func RequiredPfWay(targetYield float64, g WayGeometry, dataCheck, tagCheck, tolerable int) float64 {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	if targetYield <= 0 || targetYield >= 1 {
		panic(fmt.Sprintf("yield: target yield %g outside (0,1)", targetYield))
	}
	lo, hi := -15.0, 0.0 // log10(Pf) bounds
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if WaySurvival(math.Pow(10, mid), g, dataCheck, tagCheck, tolerable) >= targetYield {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Pow(10, (lo+hi)/2)
}
