package yield

import (
	"fmt"

	"edcache/internal/bitcell"
	"edcache/internal/ecc"
)

// Scenario selects which of the paper's two reliability baselines the
// methodology (and later the experiments) targets.
type Scenario int

const (
	// ScenarioA: baseline 6T+10T with no coding; proposal replaces the
	// 10T ULE way by 8T+SECDED (SECDED off at HP mode).
	ScenarioA Scenario = iota
	// ScenarioB: baseline 6T+SECDED + 10T+SECDED (soft-error
	// protection); proposal replaces the ULE way's SECDED by DECTED
	// (falls back to SECDED at HP mode).
	ScenarioB
)

// String names the scenario as the paper does.
func (s Scenario) String() string {
	switch s {
	case ScenarioA:
		return "A"
	case ScenarioB:
		return "B"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// BaselineCode returns the code protecting baseline ULE-way words.
func (s Scenario) BaselineCode() ecc.Kind {
	if s == ScenarioB {
		return ecc.KindSECDED
	}
	return ecc.KindNone
}

// ProposedCode returns the code protecting proposed ULE-way words at ULE
// mode.
func (s Scenario) ProposedCode() ecc.Kind {
	if s == ScenarioB {
		return ecc.KindDECTED
	}
	return ecc.KindSECDED
}

// Input configures one run of the Fig. 2 design methodology.
type Input struct {
	Scenario    Scenario
	Way         WayGeometry // geometry of one ULE way
	VccHP       float64     // HP-mode supply (paper: 1.0 V)
	VccULE      float64     // ULE-mode supply (paper: 0.35 V)
	TargetYield float64     // cache yield requirement (paper example: 0.99)
}

// Iteration records one pass of the 8T sizing loop (Fig. 2 steps 2–5).
type Iteration struct {
	Size  float64 // transistor size factor tried
	Pf8T  float64 // hard-fault bit probability at that size
	Yield float64 // resulting EDC-protected way yield, Eq. (1)/(2)
	Met   bool    // yield ≥ baseline yield?
}

// Result is the complete output of the design methodology: the sized
// cells for every array in both the baseline and the proposed design,
// plus the evidence trail (targets, yields, iterations).
type Result struct {
	Input Input

	// PfTarget is the fault-free per-bit failure-rate requirement
	// derived from the yield target over the ULE way's payload bits —
	// the paper's 1.22e-6 example for 99 % yield.
	PfTarget float64

	// HPCell is the 6T cell sized at VccHP for PfTarget (HP ways).
	HPCell   bitcell.Cell
	HPCellPf float64

	// BaselineCell is the 10T cell sized at VccULE for PfTarget
	// (baseline ULE way), with the baseline way yield Y10T (scenario A)
	// or Y10T+SECDED (scenario B).
	BaselineCell  bitcell.Cell
	BaselinePf    float64
	BaselineYield float64

	// ProposedCell is the 8T cell sized by the iterative loop until the
	// EDC-protected yield matches the baseline's.
	ProposedCell  bitcell.Cell
	ProposedPf    float64
	ProposedYield float64
	Iterations    []Iteration

	// UncodedFeasible reports whether a plain (uncoded) 8T cell could
	// have met PfTarget at any size — the paper's premise is that it
	// cannot (its failure floor exceeds the target at 350 mV), which is
	// what forces either big 10T cells or EDC.
	UncodedFeasible bool
}

// Run executes the design methodology of Section III-C / Fig. 2.
func Run(in Input) (Result, error) {
	if err := in.Way.Validate(); err != nil {
		return Result{}, err
	}
	if in.TargetYield <= 0 || in.TargetYield >= 1 {
		return Result{}, fmt.Errorf("yield: target yield %g outside (0,1)", in.TargetYield)
	}
	if in.VccULE >= in.VccHP {
		return Result{}, fmt.Errorf("yield: ULE voltage %.3f must be below HP voltage %.3f", in.VccULE, in.VccHP)
	}
	res := Result{Input: in}

	// Step 0 (Section III-C): derive the fault-free Pf requirement from
	// the yield target. The paper's example ("99 % yield for an 8 KB
	// cache ⇒ Pf = 1.22e-6") back-solves to the 8192 *data* bits of the
	// 1 KB ULE way, so the requirement is derived over data bits; tag
	// words still participate in the Eq. (2) yield evaluations below.
	res.PfTarget = RequiredPfBits(in.TargetYield, in.Way.DataWords()*in.Way.DataBits)

	// HP ways: size 6T at high voltage for the same requirement.
	hp, ok := bitcell.SizeFor(bitcell.T6, in.VccHP, res.PfTarget)
	if !ok {
		return Result{}, fmt.Errorf("yield: 6T cannot meet Pf=%.3g at %.2f V", res.PfTarget, in.VccHP)
	}
	res.HPCell = hp
	res.HPCellPf = hp.FailureProb(in.VccHP)

	// Baseline ULE way: size 10T at NST voltage to match the same Pf
	// (Fig. 2, "10T bitcells sizing", step 1), then compute its yield
	// (step 2). In scenario B the words carry SECDED check bits that
	// also must be fault-free (SECDED is reserved for soft errors).
	base, ok := bitcell.SizeFor(bitcell.T10, in.VccULE, res.PfTarget)
	if !ok {
		return Result{}, fmt.Errorf("yield: 10T cannot meet Pf=%.3g at %.2f V", res.PfTarget, in.VccULE)
	}
	res.BaselineCell = base
	res.BaselinePf = base.FailureProb(in.VccULE)
	bCheck := in.Scenario.BaselineCode().CheckBits()
	res.BaselineYield = WaySurvival(res.BaselinePf, in.Way, bCheck, bCheck, 0)

	// Sanity premise: plain 8T must NOT be able to reach the fault-free
	// target (otherwise the baseline would simply have used it).
	_, res.UncodedFeasible = bitcell.SizeFor(bitcell.T8, in.VccULE, res.PfTarget)

	// Proposed ULE way: iterate 8T size from minimum until the
	// EDC-protected yield reaches the baseline's (Fig. 2, "Replacing 10T
	// bitcells with 8T bitcells and EDC", steps 1–6). The proposed code
	// can always dedicate one correction per word to a hard fault.
	pCheck := in.Scenario.ProposedCode().CheckBits()
	for size := 1.0; ; size += bitcell.SizeStep {
		if size > bitcell.MaxSizeFactor+1e-9 {
			return Result{}, fmt.Errorf("yield: 8T+%v cannot reach yield %.4f at %.2f V within size bound",
				in.Scenario.ProposedCode(), res.BaselineYield, in.VccULE)
		}
		cell := bitcell.MustNew(bitcell.T8, quantiseSize(size))
		pf := cell.FailureProb(in.VccULE)
		y := WaySurvival(pf, in.Way, pCheck, pCheck, 1)
		met := y >= res.BaselineYield
		res.Iterations = append(res.Iterations, Iteration{Size: cell.Size, Pf8T: pf, Yield: y, Met: met})
		if met {
			res.ProposedCell = cell
			res.ProposedPf = pf
			res.ProposedYield = y
			break
		}
	}
	return res, nil
}

func quantiseSize(s float64) float64 {
	steps := int(s/bitcell.SizeStep + 0.5)
	return float64(steps) * bitcell.SizeStep
}

// PaperWay returns the ULE-way geometry of the paper's evaluation: an
// 8 KB, 8-way cache with a 7+1 split, 32-byte lines ⇒ the single ULE way
// holds 32 lines of 8 data words (32 bits) plus one 26-bit tag word each.
func PaperWay() WayGeometry {
	return WayGeometry{Lines: 32, WordsPerLine: 8, DataBits: 32, TagBits: 26}
}

// PaperInput returns the methodology input for the paper's configuration.
func PaperInput(s Scenario) Input {
	return Input{
		Scenario:    s,
		Way:         PaperWay(),
		VccHP:       1.0,
		VccULE:      0.35,
		TargetYield: 0.99,
	}
}
