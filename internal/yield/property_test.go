package yield

import (
	"math"
	"testing"
	"testing/quick"
)

// Property tests on the yield mathematics: the Fig. 2 loop's
// convergence relies on these monotonicity facts, so they are pinned
// explicitly.

func TestRequiredPfWayMonotoneInYieldTarget(t *testing.T) {
	g := PaperWay()
	prev := math.Inf(1)
	for _, y := range []float64{0.5, 0.9, 0.99, 0.999, 0.9999} {
		pf := RequiredPfWay(y, g, 7, 7, 1)
		if pf >= prev {
			t.Errorf("yield %.4f: required Pf %.3g not below previous %.3g", y, pf, prev)
		}
		prev = pf
	}
}

func TestRequiredPfBitsMonotoneInBits(t *testing.T) {
	prev := math.Inf(1)
	for _, bits := range []int{1024, 8192, 65536, 1 << 20} {
		pf := RequiredPfBits(0.99, bits)
		if pf >= prev {
			t.Errorf("%d bits: required Pf %.3g not below previous", bits, pf)
		}
		prev = pf
	}
}

func TestWaySurvivalQuickMonotoneInPf(t *testing.T) {
	g := PaperWay()
	prop := func(a, b uint16) bool {
		pfA := float64(a%10000+1) * 1e-8
		pfB := float64(b%10000+1) * 1e-8
		if pfA > pfB {
			pfA, pfB = pfB, pfA
		}
		return WaySurvival(pfA, g, 7, 7, 1) >= WaySurvival(pfB, g, 7, 7, 1)-1e-15
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWordSurvivalQuickBounds(t *testing.T) {
	prop := func(pfQ uint16, bitsQ, tolQ uint8) bool {
		pf := float64(pfQ) / 65535.0
		bits := int(bitsQ%64) + 1
		tol := int(tolQ % 4)
		s := WordSurvival(pf, bits, tol)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMethodologyDeterminism(t *testing.T) {
	// Two identical runs of the sizing methodology must agree exactly
	// (the whole evaluation depends on it).
	a, err := Run(PaperInput(ScenarioB))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(PaperInput(ScenarioB))
	if err != nil {
		t.Fatal(err)
	}
	if a.ProposedCell != b.ProposedCell || a.BaselineCell != b.BaselineCell ||
		a.PfTarget != b.PfTarget || len(a.Iterations) != len(b.Iterations) {
		t.Error("methodology is not deterministic")
	}
}

func TestMethodologyRespectsVoltageOrdering(t *testing.T) {
	// Lower ULE voltage ⇒ at-least-as-large sized cells in both
	// designs.
	prevBase, prevProp := 0.0, 0.0
	for _, mv := range []float64{450, 400, 350, 320} {
		in := PaperInput(ScenarioA)
		in.VccULE = mv / 1000
		res, err := Run(in)
		if err != nil {
			t.Fatalf("%0.f mV: %v", mv, err)
		}
		if res.BaselineCell.Size < prevBase || res.ProposedCell.Size < prevProp {
			t.Errorf("%.0f mV: cell sizes shrank as voltage dropped (10T %.2f, 8T %.2f)",
				mv, res.BaselineCell.Size, res.ProposedCell.Size)
		}
		prevBase, prevProp = res.BaselineCell.Size, res.ProposedCell.Size
	}
}
