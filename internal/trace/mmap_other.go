//go:build !unix

package trace

import (
	"io"
	"os"
)

// mapFile on platforms without syscall.Mmap reads the whole file
// instead: MapArena keeps its contract (in-place validated records,
// decode on cursor read) without the page-cache sharing.
func mapFile(f *os.File, size int64) (data []byte, release func() error, err error) {
	data = make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
