package trace

import (
	"bytes"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the reader: whatever the input —
// truncated headers, hostile chunk counts, corrupt gzip bodies — the
// reader must terminate without panicking and either replay records or
// report an error, never both silently wrong.
func FuzzReader(f *testing.F) {
	// Seed with valid v1, v2 and v2-gzip files plus degenerate inputs.
	var v1 bytes.Buffer
	if _, err := Write(&v1, &SliceStream{Insts: sampleInsts()}); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	for _, o := range []V2Options{{}, {Compress: true}, {ChunkRecords: 2}, {Phases: true}, {Compress: true, Phases: true}} {
		var v2 bytes.Buffer
		if _, err := WriteV2(&v2, &SliceStream{Insts: sampleInsts()}, o); err != nil {
			f.Fatal(err)
		}
		f.Add(v2.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0x54, 0x43, 0x44, 0x45})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		n := 0
		for {
			if _, ok := r.Next(); !ok {
				break
			}
			n++
			if n > 1<<20 {
				t.Fatalf("runaway reader: %d records from a %d-byte input", n, len(data))
			}
		}
		// A clean end on a well-formed prefix is fine; an error is
		// fine; the reader just must have terminated, which it did.
		_ = r.Err()
	})
}

// FuzzRoundTrip derives an instruction stream from the fuzz input and
// checks that both containers replay it bit-exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}, uint8(1))
	f.Add(bytes.Repeat([]byte{0xA5}, 300), uint8(3))

	f.Fuzz(func(t *testing.T, data []byte, mode uint8) {
		phased := mode&2 != 0
		insts := make([]Inst, 0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			inst := Inst{PC: uint32(i) * 4, UseDist: data[i+1] % 8}
			switch data[i] % 4 {
			case 1:
				inst.IsLoad, inst.Addr = true, uint32(data[i+1])<<4
			case 2:
				inst.IsStore, inst.Addr = true, uint32(data[i+1])<<6
			case 3:
				inst.IsBranch, inst.Taken = true, data[i+1]%2 == 0
			}
			if phased {
				inst.Phase = data[i] % 5
			}
			insts = append(insts, inst)
		}
		o := V2Options{Compress: mode&1 != 0, Phases: phased, ChunkRecords: 1 + int(mode>>2)}

		var v1, v2 bytes.Buffer
		if _, err := Write(&v1, &SliceStream{Insts: insts}); err != nil {
			t.Fatal(err)
		}
		if _, err := WriteV2(&v2, &SliceStream{Insts: insts}, o); err != nil {
			t.Fatal(err)
		}
		// v1 is frozen and discards phase annotations; v2 with the
		// phase flag round-trips them bit-exactly.
		stripped := make([]Inst, len(insts))
		copy(stripped, insts)
		for i := range stripped {
			stripped[i].Phase = 0
		}
		for name, tc := range map[string]struct {
			buf  *bytes.Buffer
			want []Inst
		}{"v1": {&v1, stripped}, "v2": {&v2, insts}} {
			r, err := NewReader(bytes.NewReader(tc.buf.Bytes()))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i, want := range tc.want {
				got, ok := r.Next()
				if !ok {
					t.Fatalf("%s: stream ended at record %d of %d (err: %v)", name, i, len(tc.want), r.Err())
				}
				if got != want {
					t.Fatalf("%s: record %d: %+v != %+v", name, i, got, want)
				}
			}
			if _, ok := r.Next(); ok {
				t.Fatalf("%s: stream did not end after %d records", name, len(tc.want))
			}
			if r.Err() != nil {
				t.Fatalf("%s: %v", name, r.Err())
			}
		}
	})
}

// sampleInsts mirrors serialize_test.go's sample for fuzz seeds.
func sampleInsts() []Inst {
	return []Inst{
		{PC: 0x400000},
		{PC: 0x400004, IsLoad: true, Addr: 0x10000000, UseDist: 1},
		{PC: 0x400008, IsStore: true, Addr: 0x10000040},
		{PC: 0x40000C, IsBranch: true, Taken: true},
	}
}
