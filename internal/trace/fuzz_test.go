package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the reader: whatever the input —
// truncated headers, hostile chunk counts, corrupt gzip bodies — the
// reader must terminate without panicking and either replay records or
// report an error, never both silently wrong.
func FuzzReader(f *testing.F) {
	// Seed with valid v1, v2 and v2-gzip files plus degenerate inputs.
	var v1 bytes.Buffer
	if _, err := Write(&v1, &SliceStream{Insts: sampleInsts()}); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	for _, o := range []V2Options{
		{}, {Compress: true}, {ChunkRecords: 2}, {Phases: true}, {Compress: true, Phases: true},
		// v2.1 corpora: checksummed, indexed, and both, plus tiny chunks
		// so the fuzzer reaches multi-chunk index mutations fast.
		{Checksums: true}, {Index: true}, {Checksums: true, Index: true},
		{Phases: true, Checksums: true, Index: true, ChunkRecords: 2},
	} {
		var v2 bytes.Buffer
		if _, err := WriteV2(&v2, &SliceStream{Insts: sampleInsts()}, o); err != nil {
			f.Fatal(err)
		}
		f.Add(v2.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0x54, 0x43, 0x44, 0x45})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		n := 0
		for {
			if _, ok := r.Next(); !ok {
				break
			}
			n++
			if n > 1<<20 {
				t.Fatalf("runaway reader: %d records from a %d-byte input", n, len(data))
			}
		}
		// A clean end on a well-formed prefix is fine; an error is
		// fine; the reader just must have terminated, which it did.
		_ = r.Err()
	})
}

// FuzzRoundTrip derives an instruction stream from the fuzz input and
// checks that both containers replay it bit-exactly. Mode bits select
// the v2 variant: bit 0 gzip, bit 1 phases, bit 2 per-chunk CRC, bit 3
// chunk index (bits 2/3 are dropped under gzip — the combination is
// invalid by spec), higher bits the chunk size.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}, uint8(1))
	f.Add(bytes.Repeat([]byte{0xA5}, 300), uint8(3))
	// v2.1 seeds: CRC, index, both, and both with phases + tiny chunks.
	f.Add(bytes.Repeat([]byte{0x3C}, 64), uint8(4))
	f.Add(bytes.Repeat([]byte{0x5A}, 64), uint8(8))
	f.Add(bytes.Repeat([]byte{0x7E}, 200), uint8(12))
	f.Add(bytes.Repeat([]byte{0x99}, 200), uint8(14|16))

	f.Fuzz(func(t *testing.T, data []byte, mode uint8) {
		phased := mode&2 != 0
		insts := make([]Inst, 0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			inst := Inst{PC: uint32(i) * 4, UseDist: data[i+1] % 8}
			switch data[i] % 4 {
			case 1:
				inst.IsLoad, inst.Addr = true, uint32(data[i+1])<<4
			case 2:
				inst.IsStore, inst.Addr = true, uint32(data[i+1])<<6
			case 3:
				inst.IsBranch, inst.Taken = true, data[i+1]%2 == 0
			}
			if phased {
				inst.Phase = data[i] % 5
			}
			insts = append(insts, inst)
		}
		o := V2Options{
			Compress: mode&1 != 0, Phases: phased,
			Checksums: mode&4 != 0, Index: mode&8 != 0,
			ChunkRecords: 1 + int(mode>>4),
		}
		if o.Compress {
			o.Checksums, o.Index = false, false
		}

		var v1, v2 bytes.Buffer
		if _, err := Write(&v1, &SliceStream{Insts: insts}); err != nil {
			t.Fatal(err)
		}
		if _, err := WriteV2(&v2, &SliceStream{Insts: insts}, o); err != nil {
			t.Fatal(err)
		}
		// v1 is frozen and discards phase annotations; v2 with the
		// phase flag round-trips them bit-exactly.
		stripped := make([]Inst, len(insts))
		copy(stripped, insts)
		for i := range stripped {
			stripped[i].Phase = 0
		}
		for name, tc := range map[string]struct {
			buf  *bytes.Buffer
			want []Inst
		}{"v1": {&v1, stripped}, "v2": {&v2, insts}} {
			r, err := NewReader(bytes.NewReader(tc.buf.Bytes()))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i, want := range tc.want {
				got, ok := r.Next()
				if !ok {
					t.Fatalf("%s: stream ended at record %d of %d (err: %v)", name, i, len(tc.want), r.Err())
				}
				if got != want {
					t.Fatalf("%s: record %d: %+v != %+v", name, i, got, want)
				}
			}
			if _, ok := r.Next(); ok {
				t.Fatalf("%s: stream did not end after %d records", name, len(tc.want))
			}
			if r.Err() != nil {
				t.Fatalf("%s: %v", name, r.Err())
			}
		}
	})
}

// FuzzIndex aims the fuzzer at the seekable machinery: mutated
// footer/index bytes (and anything else — seeds are whole indexed
// files) must never panic the random-access consumers — OpenAtChunk,
// OpenAtPhase, the parallel indexed arena loader, the mmap arena — and
// must never make them disagree with the streaming reader: any file
// the streaming reader accepts, the seekable paths must accept with
// the identical record sequence.
func FuzzIndex(f *testing.F) {
	for _, o := range []V2Options{
		{Index: true},
		{Checksums: true, Index: true},
		{Phases: true, Checksums: true, Index: true, ChunkRecords: 2},
		{Phases: true, Index: true, ChunkRecords: 3},
	} {
		var buf bytes.Buffer
		if _, err := WriteV2(&buf, &SliceStream{Insts: sampleInsts()}, o); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		var empty bytes.Buffer
		if _, err := WriteV2(&empty, &SliceStream{}, o); err != nil {
			f.Fatal(err)
		}
		f.Add(empty.Bytes())
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		// The streaming reader is the oracle: its verdict on the mutated
		// bytes decides what the seekable paths must do.
		var want []Inst
		streamOK := false
		if r, err := NewReader(bytes.NewReader(data)); err == nil {
			for {
				inst, ok := r.Next()
				if !ok {
					break
				}
				want = append(want, inst)
				if len(want) > 1<<20 {
					t.Fatalf("runaway reader: %d records from a %d-byte input", len(want), len(data))
				}
			}
			streamOK = r.Err() == nil
		}

		path := filepath.Join(t.TempDir(), "fuzz.trace")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if a, err := LoadArenaFile(path); err == nil {
			if !streamOK {
				t.Fatal("arena loader accepted a file the streaming reader rejects")
			}
			if a.Len() != len(want) {
				t.Fatalf("arena loaded %d records, stream read %d", a.Len(), len(want))
			}
		} else if streamOK {
			t.Fatalf("arena loader rejected a stream-valid file: %v", err)
		}
		if ma, err := OpenMapArena(path); err == nil {
			if !streamOK {
				t.Fatal("mmap arena accepted a file the streaming reader rejects")
			}
			if ma.Len() != len(want) {
				t.Fatalf("mmap arena mapped %d records, stream read %d", ma.Len(), len(want))
			}
			ma.Close()
		} else if streamOK && !isUnmappable(err) {
			t.Fatalf("mmap arena rejected a stream-valid file: %v", err)
		}
		if c, err := OpenAtChunk(path, 0); err == nil {
			n := 0
			for {
				if _, ok := c.Next(); !ok {
					break
				}
				n++
				if n > 1<<20 {
					t.Fatalf("runaway cursor: %d records from a %d-byte input", n, len(data))
				}
			}
			if c.Err() == nil && !streamOK {
				t.Fatal("seekable cursor replayed a file the streaming reader rejects")
			}
			if c.Err() == nil && n != len(want) {
				t.Fatalf("seekable cursor read %d records, stream read %d", n, len(want))
			}
			c.Close()
		}
		if c, err := OpenAtPhase(path, 0); err == nil {
			c.Close()
		}
	})
}

// sampleInsts mirrors serialize_test.go's sample for fuzz seeds.
func sampleInsts() []Inst {
	return []Inst{
		{PC: 0x400000},
		{PC: 0x400004, IsLoad: true, Addr: 0x10000000, UseDist: 1},
		{PC: 0x400008, IsStore: true, Addr: 0x10000040},
		{PC: 0x40000C, IsBranch: true, Taken: true},
	}
}
