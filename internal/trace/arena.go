package trace

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
)

// Slab is the replay-many contract shared by the materialized Arena
// and the mmap-backed MapArena: an immutable instruction sequence that
// hands out any number of independent replay cursors. core.RunArena,
// core.RunGroupArena and the experiments layer run against Slab, so
// the two arena kinds are interchangeable behind OpenSlab's size
// threshold.
type Slab interface {
	// Len returns the slab's instruction count.
	Len() int
	// HasPhases reports whether the slab carries phase annotations.
	HasPhases() bool
	// NewCursor returns a fresh replay over the slab from the first
	// instruction. Cursors are independent; any number may replay
	// concurrently. The returned stream implements SliceBatcher (and
	// therefore BatchStream/Stream semantics via NextSlice) plus
	// PhaseAnnotated.
	NewCursor() SliceBatcher
}

// Arena is an immutable, fully materialized instruction slab: the
// decode-once half of the decode-once/replay-many workflow. A slab is
// built exactly once — drained from a generator Stream (NewArena) or
// decoded once from a serialised v1/v2 trace file, gzip chunks included
// (LoadArena) — and then hands out any number of cheap Cursor values
// that replay it concurrently. Every sweep grid point that used to
// regenerate its workload (re-running the generator RNG) or re-decode
// its trace file instead replays the shared slab, which is what turns
// an N-point sweep's N generations into one.
//
// An Arena is immutable after construction and safe for concurrent use
// by any number of cursors; it carries the stream's phase-annotation
// bit so arena-backed replay takes exactly the code paths (batched,
// phase-segmented or not) the originating stream would have, making
// cpu.Stats and core.Report bit-identical to generator-backed runs —
// the determinism contract the experiment engine relies on.
type Arena struct {
	insts  []Inst
	phased bool
}

// arenaChunk is the granularity NewArena drains its source with; one
// Fill call per chunk keeps the bulk path of batch-capable sources.
const arenaChunk = 8192

// NewArena materializes the whole stream into a slab. The source is
// drained via its batch fast path when it has one; phase annotation is
// inherited from the stream (trace.PhaseAnnotated), so cursors replay
// exactly as the source stream would.
func NewArena(s Stream) *Arena {
	var insts []Inst
	for {
		if cap(insts)-len(insts) < arenaChunk {
			grown := make([]Inst, len(insts), 2*cap(insts)+arenaChunk)
			copy(grown, insts)
			insts = grown
		}
		n := Fill(s, insts[len(insts):len(insts)+arenaChunk])
		if n == 0 {
			break
		}
		insts = insts[:len(insts)+n]
	}
	// Shrink to fit: arenas live for a whole run (the caches retain
	// them), so the doubling loop's excess capacity — up to ~2x — would
	// otherwise be pinned alongside every slab. One copy bounds the
	// slab at exactly 16 B/instruction.
	if cap(insts) > len(insts) {
		exact := make([]Inst, len(insts))
		copy(exact, insts)
		insts = exact
	}
	return &Arena{insts: insts, phased: HasPhases(s)}
}

// LoadArena decodes a serialised trace (either container version,
// compressed or not) into a slab in one pass, validating it end to end
// — trailer count, reserved bits, gzip checksum — exactly as streaming
// replay would. Phase annotation follows the file's stream-flag bit 1.
func LoadArena(r io.Reader) (*Arena, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	a := NewArena(rd)
	if err := rd.Err(); err != nil {
		return nil, err
	}
	a.phased = rd.HasPhases()
	return a, nil
}

// LoadArenaFile is LoadArena over a file path, with a fast path for
// indexed containers (v2 stream-flag bit 3): the validated chunk index
// gives every chunk's file offset and record count, so the slab is
// sized exactly up front and the chunks are decoded in parallel across
// a worker pool into disjoint slab ranges. Unindexed files (v1,
// pre-index v2, gzip) take the sequential streaming decode.
func LoadArenaFile(path string) (*Arena, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if st, err := f.Stat(); err == nil && st.Mode().IsRegular() {
		meta, err := readFileMeta(f, st.Size())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if meta.version == traceVersionV2 && meta.indexed {
			a, err := loadArenaIndexed(f, meta)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			return a, nil
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	a, err := LoadArena(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// loadArenaIndexed decodes an indexed v2 container into a slab chunk by
// chunk across a worker pool. The index (already fully validated by
// readFileMeta) gives each chunk's slab range via a prefix sum over the
// entry counts, so workers write disjoint ranges with no
// synchronisation beyond the work counter; every chunk still gets the
// full record-level validation (CRC, reserved flag bits, phase range).
func loadArenaIndexed(f *os.File, meta *fileMeta) (*Arena, error) {
	insts := make([]Inst, meta.total)
	starts := make([]int, len(meta.entries)+1)
	for i, e := range meta.entries {
		starts[i+1] = starts[i] + e.Count
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(meta.entries) {
		workers = len(meta.entries)
	}
	if workers <= 1 {
		var raw []byte
		for i, e := range meta.entries {
			var err error
			_, raw, err = meta.decodeChunkAt(f, e, i, insts[starts[i]:starts[i]:starts[i+1]], raw)
			if err != nil {
				return nil, err
			}
		}
		return &Arena{insts: insts, phased: meta.phases}, nil
	}
	var (
		next     atomic.Int64 // next chunk to claim
		failed   atomic.Bool  // set once any worker fails, stops the others
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var raw []byte
			for {
				i := int(next.Add(1)) - 1
				if i >= len(meta.entries) || failed.Load() {
					return
				}
				e := meta.entries[i]
				var err error
				_, raw, err = meta.decodeChunkAt(f, e, i, insts[starts[i]:starts[i]:starts[i+1]], raw)
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return &Arena{insts: insts, phased: meta.phases}, nil
}

// DefaultMapThreshold is the file size at which OpenSlab switches from
// materialized slabs (16 B/record of heap) to mmap-backed arenas
// (12 B/record of page cache, decoded on cursor read): 64 MiB, past
// which duplicate materialisation starts to matter more than the
// decode-on-read cost.
const DefaultMapThreshold = 64 << 20

// OpenSlab opens a trace file as a replayable Slab, choosing the
// representation by file size: files of mapThreshold bytes or more are
// memory-mapped in place (MapArena), smaller ones are decoded once
// into a materialized slab (Arena). Files that cannot be mapped — gzip
// bodies have no addressable records — fall back to slab loading
// whatever their size. mapThreshold <= 0 means DefaultMapThreshold;
// use 1 to force mapping, or math.MaxInt64 to effectively disable it.
func OpenSlab(path string, mapThreshold int64) (Slab, error) {
	if mapThreshold <= 0 {
		mapThreshold = DefaultMapThreshold
	}
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.Size() >= mapThreshold {
		ma, err := OpenMapArena(path)
		if err == nil {
			return ma, nil
		}
		if !isUnmappable(err) {
			return nil, err
		}
	}
	return LoadArenaFile(path)
}

// Len returns the slab's instruction count.
func (a *Arena) Len() int { return len(a.insts) }

// HasPhases reports whether the slab carries phase annotations (and so
// whether its cursors advertise them).
func (a *Arena) HasPhases() bool { return a.phased }

// Cursor returns a fresh replay over the slab, starting at the first
// instruction. Cursors are cheap (two words of state over the shared
// slab) and independent: any number may replay concurrently, each at
// its own position. The returned stream implements BatchStream and
// PhaseAnnotated, so replay and serialisation take their bulk paths.
func (a *Arena) Cursor() *Cursor {
	return &Cursor{insts: a.insts, phased: a.phased}
}

// NewCursor implements Slab.
func (a *Arena) NewCursor() SliceBatcher { return a.Cursor() }

// Cursor is one replay position over an Arena's shared slab. The zero
// value is an empty stream; use Arena.Cursor. A Cursor must not be
// shared between goroutines (take one per replay instead — that is the
// point of the arena).
type Cursor struct {
	insts  []Inst
	pos    int
	phased bool
}

// Next implements Stream.
func (c *Cursor) Next() (Inst, bool) {
	if c.pos >= len(c.insts) {
		return Inst{}, false
	}
	inst := c.insts[c.pos]
	c.pos++
	return inst, true
}

// NextBatch implements BatchStream: a bulk copy out of the shared slab,
// no per-instruction work at all.
func (c *Cursor) NextBatch(buf []Inst) int {
	n := copy(buf, c.insts[c.pos:])
	c.pos += n
	return n
}

// NextSlice implements SliceBatcher: a read-only window straight into
// the shared slab — the zero-copy replay path.
func (c *Cursor) NextSlice(max int) []Inst {
	n := len(c.insts) - c.pos
	if n > max {
		n = max
	}
	s := c.insts[c.pos : c.pos+n]
	c.pos += n
	return s
}

// HasPhases implements PhaseAnnotated.
func (c *Cursor) HasPhases() bool { return c.phased }

// Reset rewinds the cursor to the start of the slab.
func (c *Cursor) Reset() { c.pos = 0 }
