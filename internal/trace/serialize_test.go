package trace

import (
	"bytes"
	"testing"
)

func sample() []Inst {
	return []Inst{
		{PC: 0x400000},
		{PC: 0x400004, IsLoad: true, Addr: 0x10000000, UseDist: 1},
		{PC: 0x400008, IsStore: true, Addr: 0x10000040},
		{PC: 0x40000C, IsBranch: true, Taken: true},
		{PC: 0x400010, IsBranch: true, Taken: false},
		{PC: 0x400014, IsLoad: true, Addr: 0xFFFFFFFC, UseDist: 3},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	n, err := Write(&buf, &SliceStream{Insts: sample()})
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("wrote %d records", n)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range sample() {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("stream ended at record %d", i)
		}
		if got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("stream did not end")
	}
	if r.Err() != nil {
		t.Errorf("unexpected error: %v", r.Err())
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Write(&buf, &SliceStream{}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Error("empty trace produced a record")
	}
	if r.Err() != nil {
		t.Errorf("empty trace error: %v", r.Err())
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3, 4, 1, 0, 0, 0})); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte{0x54, 0x43, 0x44, 0x45, 9, 0, 0, 0})); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte{0x54})); err == nil {
		t.Error("short header accepted")
	}
}

func TestTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Write(&buf, &SliceStream{Insts: sample()}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Cut mid-record: the reader must flag an error.
	r, err := NewReader(bytes.NewReader(full[:len(full)-9]))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if r.Err() == nil {
		t.Error("mid-record truncation not detected")
	}

	// Cut exactly one record before the trailer: the count mismatch
	// must be flagged.
	r2, err := NewReader(bytes.NewReader(append(append([]byte{}, full[:len(full)-16]...), full[len(full)-4:]...)))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := r2.Next(); !ok {
			break
		}
	}
	if r2.Err() == nil {
		t.Error("record-count mismatch not detected")
	}
}

func TestRoundTripLargeGenerated(t *testing.T) {
	// A full generated workload survives the round trip bit-exactly.
	src := &SliceStream{}
	for i := 0; i < 5000; i++ {
		src.Insts = append(src.Insts, Inst{
			PC:      uint32(0x400000 + i*4),
			IsLoad:  i%3 == 0,
			Addr:    uint32(0x10000000 + i*8),
			UseDist: uint8(i % 4),
		})
	}
	var buf bytes.Buffer
	if _, err := Write(&buf, src); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := Count(r); got != 5000 {
		t.Errorf("replayed %d records", got)
	}
	if r.Err() != nil {
		t.Error(r.Err())
	}
}
