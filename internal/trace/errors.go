package trace

import "errors"

// Sentinel errors naming the structural region a container failed in.
// Every validation failure the readers report wraps exactly one of
// these (plus ErrTruncated when the failure is a short read), so
// callers — and the corruption-injection suite that proves it — can
// classify a rejection with errors.Is instead of parsing messages.
// The free-text part of each error still carries the precise detail
// (offsets, counts, record indices).
var (
	// ErrHeader: the common or v2 header is invalid — bad magic,
	// unsupported version, unknown stream-flag bits, an out-of-range
	// chunk capacity, or a flag combination the spec forbids (per-chunk
	// checksums or a chunk index on a gzip body).
	ErrHeader = errors.New("invalid header")

	// ErrRecord: a record body is invalid (reserved flag bits set).
	ErrRecord = errors.New("corrupt record")

	// ErrChunk: chunk framing is invalid — a chunk count above the
	// declared capacity, or a frame that disagrees with the index.
	ErrChunk = errors.New("corrupt chunk")

	// ErrChunkCRC: a chunk's CRC32C does not match its bytes
	// (stream-flag bit 2).
	ErrChunkCRC = errors.New("chunk checksum mismatch")

	// ErrTrailer: the record-count trailer disagrees with the records
	// read, or data trails the logical end of the container.
	ErrTrailer = errors.New("corrupt trailer")

	// ErrIndex: the chunk index or its footer is structurally invalid —
	// bad footer magic, offsets that disagree with the chunks, counts or
	// phase ranges that disagree with the records (stream-flag bit 3).
	ErrIndex = errors.New("corrupt chunk index")

	// ErrIndexCRC: the chunk index's CRC32C does not match its entries.
	ErrIndexCRC = errors.New("chunk index checksum mismatch")

	// ErrTruncated: the container ended mid-structure. Always wrapped
	// alongside the region sentinel of the structure that was cut short
	// when that region is known.
	ErrTruncated = errors.New("truncated container")

	// ErrNotMappable: the file is a valid container but cannot be
	// memory-mapped for in-place replay (its body is gzip-compressed, so
	// the on-disk bytes are not the records). OpenSlab falls back to
	// slab loading on it.
	ErrNotMappable = errors.New("container not mappable")

	// ErrNoIndex: the file carries no chunk index (stream-flag bit 3
	// clear, or a v1 container), so seekable opens (OpenAtChunk,
	// OpenAtPhase) and parallel decode cannot address its chunks.
	// tracegen -reindex retrofits one.
	ErrNoIndex = errors.New("container carries no chunk index")

	// ErrPhaseNotFound: OpenAtPhase found no record with the requested
	// phase id.
	ErrPhaseNotFound = errors.New("phase id not present in trace")
)
