package trace_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"edcache/internal/trace"
)

// writeTraceFile serialises insts to a file in the given v2 options.
func writeTraceFile(t *testing.T, insts []trace.Inst, o trace.V2Options) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := trace.WriteV2(&buf, &trace.SliceStream{Insts: insts}, o); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "arena.trace")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMapArenaMatchesArena is the representation-level half of the
// differential oracle: for every mappable variant, the mmap arena and
// the materialized slab must expose identical length, phase bit and
// record sequence under mixed scalar/batch replay.
func TestMapArenaMatchesArena(t *testing.T) {
	for _, tc := range []struct {
		name   string
		phased bool
		o      trace.V2Options
	}{
		{"plain", false, trace.V2Options{ChunkRecords: 64}},
		{"crc", false, trace.V2Options{ChunkRecords: 64, Checksums: true}},
		{"crc-index", false, trace.V2Options{ChunkRecords: 64, Checksums: true, Index: true}},
		{"phased-crc-index", true, trace.V2Options{ChunkRecords: 64, Phases: true, Checksums: true, Index: true}},
		{"index-only", true, trace.V2Options{ChunkRecords: 64, Phases: true, Index: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			insts := randomInsts(1000, tc.phased, 7)
			path := writeTraceFile(t, insts, tc.o)
			slab, err := trace.LoadArenaFile(path)
			if err != nil {
				t.Fatal(err)
			}
			mapped, err := trace.OpenMapArena(path)
			if err != nil {
				t.Fatal(err)
			}
			defer mapped.Close()
			if slab.Len() != mapped.Len() {
				t.Fatalf("Len: slab %d, mapped %d", slab.Len(), mapped.Len())
			}
			if slab.HasPhases() != mapped.HasPhases() {
				t.Fatalf("HasPhases: slab %v, mapped %v", slab.HasPhases(), mapped.HasPhases())
			}
			for batchEvery := 0; batchEvery < 4; batchEvery++ {
				want := drain(slab.NewCursor(), batchEvery)
				got := drain(mapped.NewCursor(), batchEvery)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("batchEvery=%d: mapped replay diverges from slab replay", batchEvery)
				}
			}
		})
	}
}

// TestMapArenaV1 maps the flat legacy container too.
func TestMapArenaV1(t *testing.T) {
	insts := randomInsts(200, false, 3)
	var buf bytes.Buffer
	if _, err := trace.Write(&buf, &trace.SliceStream{Insts: insts}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "v1.trace")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := trace.OpenMapArena(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if got := drain(a.NewCursor(), 2); !reflect.DeepEqual(got, insts) {
		t.Error("mapped v1 replay diverges from the written records")
	}
}

// TestMapArenaConcurrentCursors replays 16 independent cursors over one
// mapped arena concurrently — the -race half of the oracle: cursors
// share only immutable mapped bytes, so the race detector must stay
// silent while every cursor sees the full sequence.
func TestMapArenaConcurrentCursors(t *testing.T) {
	insts := randomInsts(5000, true, 11)
	path := writeTraceFile(t, insts, trace.V2Options{ChunkRecords: 256, Phases: true, Checksums: true, Index: true})
	a, err := trace.OpenMapArena(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got := drain(a.NewCursor(), g%4)
			if !reflect.DeepEqual(got, insts) {
				t.Errorf("cursor %d diverged", g)
			}
		}(g)
	}
	wg.Wait()
}

// TestMapCursorReset pins cursor rewind: a replayed-then-reset cursor
// must reproduce the sequence from the start.
func TestMapCursorReset(t *testing.T) {
	insts := randomInsts(300, false, 5)
	path := writeTraceFile(t, insts, trace.V2Options{ChunkRecords: 64, Checksums: true, Index: true})
	a, err := trace.OpenMapArena(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	c := a.NewCursor()
	first := drain(c, 1)
	type resetter interface{ Reset() }
	c.(resetter).Reset()
	second := drain(c, 2)
	if !reflect.DeepEqual(first, insts) || !reflect.DeepEqual(second, insts) {
		t.Error("reset cursor diverges from the written records")
	}
}

// TestOpenSlabThreshold pins the representation switch: files at or
// above the threshold map, smaller ones materialise, and gzip files
// fall back to slabs whatever their size.
func TestOpenSlabThreshold(t *testing.T) {
	insts := randomInsts(500, false, 9)
	plain := writeTraceFile(t, insts, trace.V2Options{ChunkRecords: 64, Checksums: true, Index: true})
	gz := writeTraceFile(t, insts, trace.V2Options{ChunkRecords: 64, Compress: true})

	big, err := trace.OpenSlab(plain, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := big.(*trace.MapArena); !ok {
		t.Errorf("above-threshold file opened as %T, want *trace.MapArena", big)
	}
	big.(*trace.MapArena).Close()

	small, err := trace.OpenSlab(plain, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := small.(*trace.Arena); !ok {
		t.Errorf("below-threshold file opened as %T, want *trace.Arena", small)
	}

	fallback, err := trace.OpenSlab(gz, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fallback.(*trace.Arena); !ok {
		t.Errorf("gzip file opened as %T, want *trace.Arena fallback", fallback)
	}

	// All three replay identically regardless of representation.
	want := drain(small.NewCursor(), 2)
	if !reflect.DeepEqual(want, insts) {
		t.Fatal("slab replay diverges from the written records")
	}
	if got := drain(fallback.NewCursor(), 2); !reflect.DeepEqual(got, want) {
		t.Error("gzip fallback replay diverges")
	}
}
