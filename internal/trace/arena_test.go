package trace_test

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"edcache/internal/trace"
)

// randomInsts builds a deterministic synthetic instruction sequence
// covering every record field, optionally phase-annotated.
func randomInsts(n int, phased bool, seed int64) []trace.Inst {
	rng := rand.New(rand.NewSource(seed))
	insts := make([]trace.Inst, n)
	for i := range insts {
		inst := trace.Inst{PC: uint32(0x400000 + 4*i)}
		switch rng.Intn(4) {
		case 0:
			inst.IsLoad = true
			inst.Addr = rng.Uint32() &^ 3
			inst.UseDist = uint8(rng.Intn(4))
		case 1:
			inst.IsStore = true
			inst.Addr = rng.Uint32() &^ 3
		case 2:
			inst.IsBranch = true
			inst.Taken = rng.Intn(2) == 0
		}
		if phased {
			inst.Phase = uint8(i / (n/4 + 1))
		}
		insts[i] = inst
	}
	return insts
}

// drain replays a stream with a deterministic mix of scalar and batched
// reads, exercising both cursor paths.
func drain(s trace.Stream, batchEvery int) []trace.Inst {
	var out []trace.Inst
	buf := make([]trace.Inst, 37) // odd size: chunk boundaries move around
	for i := 0; ; i++ {
		if batchEvery > 0 && i%batchEvery == 0 {
			n := trace.Fill(s, buf)
			if n == 0 {
				return out
			}
			out = append(out, buf[:n]...)
			continue
		}
		inst, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, inst)
	}
}

func TestArenaCursorReplaysSource(t *testing.T) {
	want := randomInsts(10_000, false, 7)
	a := trace.NewArena(&trace.SliceStream{Insts: want})
	if a.Len() != len(want) {
		t.Fatalf("arena holds %d instructions, want %d", a.Len(), len(want))
	}
	if a.HasPhases() {
		t.Error("unphased source produced a phase-annotated arena")
	}
	for _, batchEvery := range []int{0, 1, 3} {
		got := drain(a.Cursor(), batchEvery)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cursor replay (batchEvery=%d) diverges from the source", batchEvery)
		}
	}
	// A second cursor is independent of the first's position.
	c1, c2 := a.Cursor(), a.Cursor()
	c1.NextBatch(make([]trace.Inst, 5000))
	if inst, ok := c2.Next(); !ok || inst != want[0] {
		t.Fatal("second cursor does not start at the slab's first instruction")
	}
	c1.Reset()
	if inst, ok := c1.Next(); !ok || inst != want[0] {
		t.Fatal("Reset did not rewind the cursor")
	}
}

func TestArenaInheritsPhaseAnnotation(t *testing.T) {
	insts := randomInsts(1000, true, 8)
	a := trace.NewArena(&trace.SliceStream{Insts: insts})
	if !a.HasPhases() || !a.Cursor().HasPhases() {
		t.Error("phase-annotated source lost its annotation in the arena")
	}
	// WithPhase advertises phases even when every id is zero.
	a = trace.NewArena(trace.WithPhase(&trace.SliceStream{Insts: randomInsts(100, false, 9)}, 0))
	if !a.HasPhases() {
		t.Error("WithPhase-stamped source lost its annotation in the arena")
	}
}

func TestLoadArenaRoundTrips(t *testing.T) {
	insts := randomInsts(5_000, true, 11)
	cases := []struct {
		name   string
		write  func(s trace.Stream) (*bytes.Buffer, error)
		phased bool
	}{
		{"v1", func(s trace.Stream) (*bytes.Buffer, error) {
			var b bytes.Buffer
			_, err := trace.Write(&b, s)
			return &b, err
		}, false},
		{"v2", func(s trace.Stream) (*bytes.Buffer, error) {
			var b bytes.Buffer
			_, err := trace.WriteV2(&b, s, trace.V2Options{ChunkRecords: 512})
			return &b, err
		}, false},
		{"v2-gzip-phases", func(s trace.Stream) (*bytes.Buffer, error) {
			var b bytes.Buffer
			_, err := trace.WriteV2(&b, s, trace.V2Options{Compress: true, Phases: true})
			return &b, err
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf, err := tc.write(&trace.SliceStream{Insts: insts})
			if err != nil {
				t.Fatal(err)
			}
			a, err := trace.LoadArena(buf)
			if err != nil {
				t.Fatal(err)
			}
			if a.HasPhases() != tc.phased {
				t.Fatalf("HasPhases = %v, want %v", a.HasPhases(), tc.phased)
			}
			want := insts
			if !tc.phased { // phase ids are discarded by phase-less containers
				want = make([]trace.Inst, len(insts))
				copy(want, insts)
				for i := range want {
					want[i].Phase = 0
				}
			}
			if got := drain(a.Cursor(), 2); !reflect.DeepEqual(got, want) {
				t.Fatal("arena-loaded trace diverges from the serialised stream")
			}
		})
	}
}

func TestLoadArenaRejectsCorruptContainers(t *testing.T) {
	var b bytes.Buffer
	if _, err := trace.WriteV2(&b, &trace.SliceStream{Insts: randomInsts(2000, false, 3)}, trace.V2Options{}); err != nil {
		t.Fatal(err)
	}
	full := b.Bytes()
	if _, err := trace.LoadArena(bytes.NewReader(full[:len(full)-5])); err == nil {
		t.Error("truncated v2 container loaded without error")
	}
	if _, err := trace.LoadArena(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Error("garbage loaded without error")
	}
}

func TestLoadArenaFile(t *testing.T) {
	insts := randomInsts(1234, false, 5)
	path := filepath.Join(t.TempDir(), "x.trace")
	var b bytes.Buffer
	if _, err := trace.WriteV2(&b, &trace.SliceStream{Insts: insts}, trace.V2Options{Compress: true}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := trace.LoadArenaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != len(insts) {
		t.Fatalf("loaded %d instructions, want %d", a.Len(), len(insts))
	}
	if _, err := trace.LoadArenaFile(filepath.Join(t.TempDir(), "missing.trace")); err == nil {
		t.Error("missing file loaded without error")
	}
}

// TestArenaConcurrentCursors drives many simultaneous cursors over one
// shared slab; under -race (CI runs the suite with the detector on)
// this proves the arena's concurrent-replay contract.
func TestArenaConcurrentCursors(t *testing.T) {
	want := randomInsts(20_000, true, 13)
	a := trace.NewArena(&trace.SliceStream{Insts: want})
	const replays = 16
	var wg sync.WaitGroup
	errs := make([]string, replays)
	for g := 0; g < replays; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got := drain(a.Cursor(), g%4) // every goroutine mixes paths differently
			if !reflect.DeepEqual(got, want) {
				errs[g] = "concurrent cursor replay diverged"
			}
		}(g)
	}
	wg.Wait()
	for g, e := range errs {
		if e != "" {
			t.Errorf("goroutine %d: %s", g, e)
		}
	}
}
