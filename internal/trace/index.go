package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Seekable chunk index (v2 stream-flag bit 3, docs/TRACEFORMAT.md):
// the container's last bytes are a fixed 16-byte footer pointing back
// at one 16-byte entry per chunk plus an index CRC32C. A seekable
// consumer reads the footer, walks back to the entries, and from then
// on can address any chunk — start replay mid-file (OpenAtChunk,
// OpenAtPhase), decode chunks in parallel (LoadArenaFile), or map the
// records in place (OpenMapArena) — without touching the body prefix.

const (
	indexEntryBytes  = 16
	indexFooterBytes = 16
	indexMagic       = 0x58444354 // "TCDX" on disk
)

// IndexEntry describes one chunk of an indexed v2 container: where its
// frame starts, how many records it holds, and the phase-id range of
// those records (0/0 when the stream carries no phase annotations).
type IndexEntry struct {
	Offset   int64
	Count    int
	MinPhase uint8
	MaxPhase uint8
}

// frameBytes is the chunk frame length the entry implies: count field,
// records, and the chunk CRC when the stream carries checksums.
func (e IndexEntry) frameBytes(checksums bool) int64 {
	n := int64(4 + e.Count*recordBytes)
	if checksums {
		n += chunkCRCBytes
	}
	return n
}

// putIndexEntry encodes one 16-byte index entry.
func putIndexEntry(b []byte, e IndexEntry) {
	binary.LittleEndian.PutUint64(b[0:8], uint64(e.Offset))
	binary.LittleEndian.PutUint32(b[8:12], uint32(e.Count))
	b[12] = e.MinPhase
	b[13] = e.MaxPhase
	b[14], b[15] = 0, 0
}

// getIndexEntry decodes and structurally validates one index entry.
func getIndexEntry(b []byte) (IndexEntry, error) {
	e := IndexEntry{
		Offset:   int64(binary.LittleEndian.Uint64(b[0:8])),
		Count:    int(binary.LittleEndian.Uint32(b[8:12])),
		MinPhase: b[12],
		MaxPhase: b[13],
	}
	if b[14] != 0 || b[15] != 0 {
		return IndexEntry{}, fmt.Errorf("trace: %w: reserved entry bytes %#02x%02x", ErrIndex, b[14], b[15])
	}
	if e.MinPhase > e.MaxPhase {
		return IndexEntry{}, fmt.Errorf("trace: %w: entry phase range %d..%d inverted", ErrIndex, e.MinPhase, e.MaxPhase)
	}
	return e, nil
}

// putIndexFooter encodes the fixed footer that ends an indexed file.
func putIndexFooter(b []byte, chunks uint32, indexOff int64) {
	binary.LittleEndian.PutUint32(b[0:4], indexMagic)
	binary.LittleEndian.PutUint32(b[4:8], chunks)
	binary.LittleEndian.PutUint64(b[8:16], uint64(indexOff))
}

// getIndexFooter decodes the footer, validating its magic.
func getIndexFooter(b []byte) (chunks uint32, indexOff int64, err error) {
	if m := binary.LittleEndian.Uint32(b[0:4]); m != indexMagic {
		return 0, 0, fmt.Errorf("trace: %w: bad footer magic %#x", ErrIndex, m)
	}
	return binary.LittleEndian.Uint32(b[4:8]), int64(binary.LittleEndian.Uint64(b[8:16])), nil
}

// fileMeta is a container's header — and, when present, its fully
// validated chunk index — parsed from a seekable source without
// reading the body. It is the shared foundation of every random-access
// consumer: OpenAtChunk/OpenAtPhase, parallel arena loading, and the
// mmap arena.
type fileMeta struct {
	version    int
	compressed bool
	phases     bool
	checksums  bool
	indexed    bool
	chunkCap   int
	size       int64
	total      uint64       // trailer record count (indexed v2 and v1 only)
	entries    []IndexEntry // indexed v2 only
	indexOff   int64        // file offset of the first index entry
}

// readFileMeta parses the header from a seekable source and, for an
// indexed v2 container, reads and fully validates the chunk index:
// footer magic and geometry, index CRC, entry reserved bytes, strictly
// increasing offsets whose frame arithmetic tiles the body exactly,
// counts within the chunk capacity summing to the trailer, and the end
// marker/trailer themselves. The chunk bodies are NOT read — that is
// the point — so record-level validation (CRCs, flag bits) remains the
// consumer's job.
func readFileMeta(r io.ReaderAt, size int64) (*fileMeta, error) {
	var hdr [v2HeaderBytes]byte
	if size < 8 {
		return nil, fmt.Errorf("trace: %w: %w: %d-byte file", ErrHeader, ErrTruncated, size)
	}
	common := hdr[:8]
	if size >= v2HeaderBytes {
		common = hdr[:]
	}
	if _, err := r.ReadAt(common, 0); err != nil {
		return nil, fmt.Errorf("trace: %w: %w: short header: %v", ErrHeader, ErrTruncated, err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != traceMagic {
		return nil, fmt.Errorf("trace: %w: bad magic %#x", ErrHeader, m)
	}
	m := &fileMeta{size: size}
	switch v := binary.LittleEndian.Uint32(hdr[4:8]); v {
	case traceVersionV1:
		m.version = traceVersionV1
		// v1 is a flat record array with a uint32 trailer: its geometry
		// is fully determined by the file size.
		if size < 8+4 || (size-8-4)%recordBytes != 0 {
			return nil, fmt.Errorf("trace: %w: v1 file size %d does not frame whole records", ErrTruncated, size)
		}
		m.total = uint64((size - 8 - 4) / recordBytes)
		var tb [4]byte
		if _, err := r.ReadAt(tb[:], size-4); err != nil {
			return nil, fmt.Errorf("trace: %w: %w: v1 trailer: %v", ErrTrailer, ErrTruncated, err)
		}
		if got := binary.LittleEndian.Uint32(tb[:]); uint64(got) != m.total {
			return nil, fmt.Errorf("trace: %w: v1 trailer count %d, file frames %d records", ErrTrailer, got, m.total)
		}
		return m, nil
	case traceVersionV2:
		m.version = traceVersionV2
	default:
		return nil, fmt.Errorf("trace: %w: unsupported version %d", ErrHeader, v)
	}
	if size < v2HeaderBytes {
		return nil, fmt.Errorf("trace: %w: %w: short v2 header", ErrHeader, ErrTruncated)
	}
	flags := binary.LittleEndian.Uint32(hdr[8:12])
	if flags&^uint32(v2FlagKnown) != 0 {
		return nil, fmt.Errorf("trace: %w: unknown v2 stream flag bits %#x", ErrHeader, flags&^uint32(v2FlagKnown))
	}
	if flags&v2FlagGzip != 0 && flags&(v2FlagCRC|v2FlagIndex) != 0 {
		return nil, fmt.Errorf("trace: %w: stream flags %#x combine gzip with per-chunk CRC/index (reserved combination)", ErrHeader, flags)
	}
	m.compressed = flags&v2FlagGzip != 0
	m.phases = flags&v2FlagPhases != 0
	m.checksums = flags&v2FlagCRC != 0
	m.indexed = flags&v2FlagIndex != 0
	chunkCap := binary.LittleEndian.Uint32(hdr[12:16])
	if chunkCap < 1 || chunkCap > MaxChunkRecords {
		return nil, fmt.Errorf("trace: %w: v2 chunk capacity %d outside [1, %d]", ErrHeader, chunkCap, MaxChunkRecords)
	}
	m.chunkCap = int(chunkCap)
	if !m.indexed {
		return m, nil
	}
	return m, m.readIndex(r)
}

// readIndex loads and validates the chunk index of an indexed v2
// container (see readFileMeta for what is checked).
func (m *fileMeta) readIndex(r io.ReaderAt) error {
	if m.size < v2HeaderBytes+v2EndBytes+chunkCRCBytes+indexFooterBytes {
		return fmt.Errorf("trace: %w: %w: %d-byte file cannot hold an indexed container", ErrIndex, ErrTruncated, m.size)
	}
	var fb [indexFooterBytes]byte
	if _, err := r.ReadAt(fb[:], m.size-indexFooterBytes); err != nil {
		return fmt.Errorf("trace: %w: %w: index footer: %v", ErrIndex, ErrTruncated, err)
	}
	chunks, indexOff, err := getIndexFooter(fb[:])
	if err != nil {
		return err
	}
	if want := indexOff + int64(chunks)*indexEntryBytes + chunkCRCBytes + indexFooterBytes; indexOff < v2HeaderBytes+v2EndBytes || want != m.size {
		return fmt.Errorf("trace: %w: footer geometry (offset %d, %d chunks) does not tile the %d-byte file", ErrIndex, indexOff, chunks, m.size)
	}
	m.indexOff = indexOff
	idx := make([]byte, int(chunks)*indexEntryBytes+chunkCRCBytes)
	if _, err := r.ReadAt(idx, indexOff); err != nil {
		return fmt.Errorf("trace: %w: %w: index: %v", ErrIndex, ErrTruncated, err)
	}
	entryBytes := int(chunks) * indexEntryBytes
	if want, got := binary.LittleEndian.Uint32(idx[entryBytes:]), crc32.Checksum(idx[:entryBytes], castagnoli); want != got {
		return fmt.Errorf("trace: %w: stored %08x, computed %08x", ErrIndexCRC, want, got)
	}
	m.entries = make([]IndexEntry, chunks)
	off := int64(v2HeaderBytes)
	var total uint64
	for i := range m.entries {
		e, err := getIndexEntry(idx[i*indexEntryBytes:])
		if err != nil {
			return fmt.Errorf("%w (entry %d)", err, i)
		}
		if e.Count < 1 || e.Count > m.chunkCap {
			return fmt.Errorf("trace: %w: entry %d holds %d records, capacity %d", ErrIndex, i, e.Count, m.chunkCap)
		}
		if e.Offset != off {
			return fmt.Errorf("trace: %w: entry %d at offset %d, previous frame ended at %d", ErrIndex, i, e.Offset, off)
		}
		if !m.phases && (e.MinPhase != 0 || e.MaxPhase != 0) {
			return fmt.Errorf("trace: %w: entry %d declares phase range %d..%d in a phase-less stream", ErrIndex, i, e.MinPhase, e.MaxPhase)
		}
		off += e.frameBytes(m.checksums)
		total += uint64(e.Count)
		m.entries[i] = e
	}
	if off != indexOff-v2EndBytes {
		return fmt.Errorf("trace: %w: chunks end at offset %d, end marker expected at %d", ErrIndex, off, indexOff-v2EndBytes)
	}
	var end [v2EndBytes]byte
	if _, err := r.ReadAt(end[:], off); err != nil {
		return fmt.Errorf("trace: %w: %w: end marker: %v", ErrTrailer, ErrTruncated, err)
	}
	if c := binary.LittleEndian.Uint32(end[0:4]); c != 0 {
		return fmt.Errorf("trace: %w: end marker holds chunk count %d", ErrTrailer, c)
	}
	if got := binary.LittleEndian.Uint64(end[4:12]); got != total {
		return fmt.Errorf("trace: %w: trailer count %d, index sums to %d", ErrTrailer, got, total)
	}
	m.total = total
	return nil
}

// decodeChunkAt reads and fully validates the chunk described by entry
// e from r: frame length, stored count, CRC (when the stream carries
// checksums), per-record reserved flag bits, and the entry's declared
// phase range. Decoded records are appended into dst (which must have
// capacity) and raw is the caller's frame scratch, grown as needed.
func (m *fileMeta) decodeChunkAt(r io.ReaderAt, e IndexEntry, chunkIdx int, dst []Inst, raw []byte) ([]Inst, []byte, error) {
	frame := int(e.frameBytes(m.checksums))
	if cap(raw) < frame {
		raw = make([]byte, frame)
	}
	raw = raw[:frame]
	if _, err := r.ReadAt(raw, e.Offset); err != nil {
		return dst, raw, fmt.Errorf("trace: %w: chunk %d at offset %d: %v", ErrTruncated, chunkIdx, e.Offset, err)
	}
	if got := binary.LittleEndian.Uint32(raw[0:4]); int(got) != e.Count {
		return dst, raw, fmt.Errorf("trace: %w: chunk %d stores count %d, index declares %d", ErrChunk, chunkIdx, got, e.Count)
	}
	recs := raw[4 : 4+e.Count*recordBytes]
	if m.checksums {
		want := binary.LittleEndian.Uint32(raw[len(raw)-chunkCRCBytes:])
		got := crc32.Checksum(raw[:len(raw)-chunkCRCBytes], castagnoli)
		if want != got {
			return dst, raw, fmt.Errorf("trace: %w: chunk %d: stored %08x, computed %08x", ErrChunkCRC, chunkIdx, want, got)
		}
	}
	for i := 0; i < e.Count; i++ {
		inst, err := decodeRecord(recs[i*recordBytes:], m.phases)
		if err != nil {
			return dst, raw, fmt.Errorf("%w (chunk %d record %d)", err, chunkIdx, i)
		}
		if m.phases && (inst.Phase < e.MinPhase || inst.Phase > e.MaxPhase) {
			return dst, raw, fmt.Errorf("trace: %w: chunk %d record %d has phase %d outside declared range %d..%d",
				ErrIndex, chunkIdx, i, inst.Phase, e.MinPhase, e.MaxPhase)
		}
		dst = append(dst, inst)
	}
	return dst, raw, nil
}

// FileCursor replays an indexed trace file from a chosen chunk to the
// end of the trace, decoding only the chunks it visits — the seekable
// counterpart of the streaming Reader for replay that must not pay for
// the prefix. It validates as it goes (chunk CRCs, record flag bits,
// the index's declared counts and phase ranges); failures surface
// through Err, like the Reader's. Close releases the underlying file.
type FileCursor struct {
	f    *os.File
	meta *fileMeta

	cur   int // next index entry to decode
	chunk []Inst
	pos   int
	raw   []byte

	err  error
	done bool
}

// OpenAtChunk opens an indexed trace file positioned at the start of
// chunk (0-based, as listed in the file's index), without reading any
// earlier chunk. Files without an index (pre-index v2, v1) are
// rejected with ErrNoIndex — tracegen -reindex retrofits one.
func OpenAtChunk(path string, chunk int) (*FileCursor, error) {
	fc, err := openIndexed(path)
	if err != nil {
		return nil, err
	}
	if chunk < 0 || (chunk >= len(fc.meta.entries) && !(chunk == 0 && len(fc.meta.entries) == 0)) {
		fc.Close()
		return nil, fmt.Errorf("trace: chunk %d out of range [0, %d)", chunk, len(fc.meta.entries))
	}
	fc.cur = chunk
	return fc, nil
}

// OpenAtPhase opens an indexed trace file positioned at the first
// record whose phase id equals phase, located through the index's
// per-chunk phase ranges — chunks whose range excludes the phase are
// skipped without being read. Replay continues to the end of the
// trace, not just the end of the phase. A phase id that occurs nowhere
// is reported with ErrPhaseNotFound. Phase-less files position at the
// start for phase 0 (their records replay as phase 0) and have no
// other phases.
func OpenAtPhase(path string, phase uint8) (*FileCursor, error) {
	fc, err := openIndexed(path)
	if err != nil {
		return nil, err
	}
	for i, e := range fc.meta.entries {
		if phase < e.MinPhase || phase > e.MaxPhase {
			continue
		}
		// Candidate chunk: the range bounds the phases present but a
		// phase strictly inside the range may be absent, so scan.
		fc.cur = i
		if !fc.loadChunk() {
			err := fc.err
			fc.Close()
			return nil, err
		}
		for j, inst := range fc.chunk {
			if inst.Phase == phase {
				fc.pos = j
				return fc, nil
			}
		}
	}
	fc.Close()
	return nil, fmt.Errorf("trace: %w: phase %d", ErrPhaseNotFound, phase)
}

// openIndexed opens the file and parses + validates its index.
func openIndexed(path string) (*FileCursor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	meta, err := readFileMeta(f, st.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if meta.version != traceVersionV2 || !meta.indexed {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, ErrNoIndex)
	}
	return &FileCursor{f: f, meta: meta}, nil
}

// loadChunk decodes index entry cur into the chunk buffer.
func (c *FileCursor) loadChunk() bool {
	if c.err != nil || c.cur >= len(c.meta.entries) {
		return false
	}
	e := c.meta.entries[c.cur]
	c.chunk = c.chunk[:0]
	if cap(c.chunk) < e.Count {
		c.chunk = make([]Inst, 0, c.meta.chunkCap)
	}
	var err error
	c.chunk, c.raw, err = c.meta.decodeChunkAt(c.f, e, c.cur, c.chunk, c.raw)
	if err != nil {
		c.err = fmt.Errorf("%s: %w", c.f.Name(), err)
		return false
	}
	c.cur++
	c.pos = 0
	return true
}

// Next implements Stream.
func (c *FileCursor) Next() (Inst, bool) {
	if c.done || c.err != nil {
		return Inst{}, false
	}
	if c.pos >= len(c.chunk) {
		if !c.loadChunk() {
			c.done = true
			return Inst{}, false
		}
	}
	inst := c.chunk[c.pos]
	c.pos++
	return inst, true
}

// NextBatch implements BatchStream.
func (c *FileCursor) NextBatch(buf []Inst) int {
	if c.done || c.err != nil {
		return 0
	}
	n := 0
	for n < len(buf) {
		if c.pos >= len(c.chunk) {
			if !c.loadChunk() {
				c.done = true
				break
			}
		}
		m := copy(buf[n:], c.chunk[c.pos:])
		c.pos += m
		n += m
	}
	return n
}

// HasPhases implements PhaseAnnotated.
func (c *FileCursor) HasPhases() bool { return c.meta.phases }

// Err reports a validation failure encountered while replaying.
func (c *FileCursor) Err() error { return c.err }

// Close releases the underlying file. The cursor must not be used
// afterwards.
func (c *FileCursor) Close() error { return c.f.Close() }
