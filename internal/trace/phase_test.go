package trace

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// phasedSample returns a stream crossing three phases.
func phasedSample() []Inst {
	insts := make([]Inst, 90)
	for i := range insts {
		insts[i] = Inst{PC: uint32(i * 4), Phase: uint8(i / 30)}
		if i%3 == 0 {
			insts[i].IsLoad = true
			insts[i].Addr = uint32(0x1000 + i*4)
			insts[i].UseDist = uint8(1 + i%3)
		}
	}
	return insts
}

func TestV2PhaseRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		o    V2Options
	}{
		{"plain", V2Options{Phases: true}},
		{"gzip", V2Options{Phases: true, Compress: true}},
		{"tiny-chunks", V2Options{Phases: true, ChunkRecords: 7}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			insts := phasedSample()
			data := writeV2(t, insts, tc.o)
			r, err := NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if !r.HasPhases() {
				t.Error("phase flag not advertised")
			}
			got := readAll(t, r)
			if r.Err() != nil {
				t.Fatal(r.Err())
			}
			if !reflect.DeepEqual(got, insts) {
				t.Error("phased records did not round-trip bit-exactly")
			}
			if r.UnadvertisedPhaseBytes() != 0 {
				t.Errorf("advertised phases counted as stray: %d", r.UnadvertisedPhaseBytes())
			}
		})
	}
}

func TestV2PhaselessWriteDropsPhaseIDs(t *testing.T) {
	// Without V2Options.Phases the writer keeps byte 10 reserved-zero,
	// so the file reads exactly like a pre-phase v2 trace.
	data := writeV2(t, phasedSample(), V2Options{})
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.HasPhases() {
		t.Error("phase flag set without V2Options.Phases")
	}
	for i, inst := range readAll(t, r) {
		if inst.Phase != 0 {
			t.Fatalf("record %d: phase %d leaked into a phase-less container", i, inst.Phase)
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if r.UnadvertisedPhaseBytes() != 0 {
		t.Errorf("clean phase-less file reported %d stray phase bytes", r.UnadvertisedPhaseBytes())
	}
}

func TestV1WriteDropsPhaseIDs(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Write(&buf, &SliceStream{Insts: phasedSample()}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.HasPhases() {
		t.Error("v1 cannot advertise phases")
	}
	for i, inst := range readAll(t, r) {
		if inst.Phase != 0 {
			t.Fatalf("record %d: v1 carried phase %d", i, inst.Phase)
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestUnadvertisedPhaseBytesCounted(t *testing.T) {
	// A phase-annotated body whose header lost the phase flag: records
	// still replay (reserved bytes are ignored) but the reader counts
	// the mismatch so tools can surface it.
	insts := phasedSample()
	data := writeV2(t, insts, V2Options{Phases: true})
	binary.LittleEndian.PutUint32(data[8:12], 0) // clear stream flags
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.HasPhases() {
		t.Fatal("cleared flag still advertised")
	}
	got := readAll(t, r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(got) != len(insts) {
		t.Fatalf("replayed %d of %d records", len(got), len(insts))
	}
	want := uint64(0)
	for _, inst := range insts {
		if inst.Phase != 0 {
			want++
		}
	}
	if r.UnadvertisedPhaseBytes() != want {
		t.Errorf("stray phase bytes %d, want %d", r.UnadvertisedPhaseBytes(), want)
	}
}

func TestWithPhaseStampsEverything(t *testing.T) {
	s := WithPhase(&SliceStream{Insts: phasedSample()}, 9)
	if !HasPhases(s) {
		t.Error("WithPhase stream must advertise phases")
	}
	buf := make([]Inst, 17)
	seen := 0
	for {
		n := s.NextBatch(buf)
		if n == 0 {
			break
		}
		for _, inst := range buf[:n] {
			if inst.Phase != 9 {
				t.Fatalf("phase %d, want 9", inst.Phase)
			}
		}
		seen += n
	}
	if seen != len(phasedSample()) {
		t.Errorf("stamped %d records, want %d", seen, len(phasedSample()))
	}
}

func TestTeeCapturesIdenticalStream(t *testing.T) {
	// The tee contract: the consumer sees the untouched sequence and
	// the captured file replays bit-identically — scalar and batch.
	insts := phasedSample()
	for _, batch := range []bool{false, true} {
		var sink bytes.Buffer
		vw, err := NewV2Writer(&sink, V2Options{Phases: true, ChunkRecords: 11})
		if err != nil {
			t.Fatal(err)
		}
		var replayed []Inst
		var teeErr func() error
		if batch {
			tee := TeeBatch(&SliceStream{Insts: insts}, vw)
			buf := make([]Inst, 13)
			for {
				n := tee.NextBatch(buf)
				if n == 0 {
					break
				}
				replayed = append(replayed, buf[:n]...)
			}
			teeErr = tee.Err
		} else {
			tee := Tee(&SliceStream{Insts: insts}, vw)
			for {
				inst, ok := tee.Next()
				if !ok {
					break
				}
				replayed = append(replayed, inst)
			}
			teeErr = tee.Err
		}
		if err := teeErr(); err != nil {
			t.Fatal(err)
		}
		if err := vw.Close(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(replayed, insts) {
			t.Errorf("batch=%v: tee altered the replayed sequence", batch)
		}
		r, err := NewReader(bytes.NewReader(sink.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		captured := readAll(t, r)
		if r.Err() != nil {
			t.Fatal(r.Err())
		}
		if !reflect.DeepEqual(captured, insts) {
			t.Errorf("batch=%v: captured file does not replay bit-identically", batch)
		}
	}
}

func TestTeeForwardsPhaseAnnotation(t *testing.T) {
	var sink bytes.Buffer
	vw, err := NewV2Writer(&sink, V2Options{})
	if err != nil {
		t.Fatal(err)
	}
	if HasPhases(Tee(&SliceStream{}, vw)) {
		t.Error("tee over an unphased stream claims phases")
	}
	if !HasPhases(TeeBatch(WithPhase(&SliceStream{Insts: sample()}, 1), vw)) {
		t.Error("tee over a phased stream lost the annotation")
	}
}

// failAfter fails every write once limit bytes have been accepted.
type failAfter struct {
	limit int
	wrote int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.wrote+len(p) > f.limit {
		return 0, errSinkFull
	}
	f.wrote += len(p)
	return len(p), nil
}

var errSinkFull = bytes.ErrTooLarge

func TestTeeSinkFailureIsSticky(t *testing.T) {
	insts := make([]Inst, 4096)
	for i := range insts {
		insts[i] = Inst{PC: uint32(i)}
	}
	vw, err := NewV2Writer(&failAfter{limit: 64}, V2Options{ChunkRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	tee := TeeBatch(&SliceStream{Insts: insts}, vw)
	buf := make([]Inst, 64)
	for tee.NextBatch(buf) != 0 {
	}
	if tee.Err() == nil {
		t.Error("sink failure not reported by Err")
	}
	if vw.Close() == nil {
		t.Error("Close after sink failure must fail")
	}
}

func TestV2WriterRejectsAppendAfterClose(t *testing.T) {
	var sink bytes.Buffer
	vw, err := NewV2Writer(&sink, V2Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := vw.Append(sample()...); err != nil {
		t.Fatal(err)
	}
	if err := vw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := vw.Append(Inst{}); err == nil {
		t.Error("append after Close accepted")
	}
	if err := vw.Close(); err != nil {
		t.Errorf("second Close not idempotent: %v", err)
	}
	if vw.Count() != int64(len(sample())) {
		t.Errorf("Count() = %d, want %d", vw.Count(), len(sample()))
	}
}
