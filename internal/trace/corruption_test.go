package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// The corruption-injection suite: every structural region of a v2.1
// container (header, chunk body, chunk CRC, end marker, trailer, index
// entries, index CRC, footer) is flipped — and the file truncated at
// every byte boundary — and every read path (streaming, slab loading,
// parallel indexed loading, mmap, seekable open) must fail with a
// wrapped sentinel naming the region: no panics, no silent success.

// corpusInsts is the fixed instruction sequence the corruption suite
// serialises: 10 phase-annotated records in chunks of 4, giving three
// chunks (4, 4, 2 records) with phase ranges 0..1, 1..2, 2..3.
func corpusInsts() []Inst {
	insts := make([]Inst, 10)
	for i := range insts {
		insts[i] = Inst{PC: uint32(0x1000 + 4*i), Phase: uint8(i / 3)}
		switch i % 3 {
		case 0:
			insts[i].IsLoad, insts[i].Addr, insts[i].UseDist = true, uint32(0x8000+64*i), uint8(i)
		case 1:
			insts[i].IsStore, insts[i].Addr = true, uint32(0x9000+64*i)
		case 2:
			insts[i].IsBranch, insts[i].Taken = true, i%2 == 0
		}
	}
	return insts
}

// v21Layout names the structural offsets of the suite's container so
// corruption cases can target regions by meaning, not magic numbers.
type v21Layout struct {
	data []byte

	chunk0    int // offset of chunk 0's count field
	chunk0Rec int // offset of chunk 0's first record
	chunk0CRC int // offset of chunk 0's CRC32C
	endMarker int // offset of the 4-byte zero end marker
	trailer   int // offset of the 8-byte record-count trailer
	index     int // offset of the first index entry
	indexCRC  int // offset of the index CRC32C
	footer    int // offset of the 16-byte footer
}

// buildV21 serialises corpusInsts as a checksummed, indexed, phased
// v2.1 container and derives its layout.
func buildV21(t *testing.T) v21Layout {
	t.Helper()
	data := writeV2(t, corpusInsts(), V2Options{ChunkRecords: 4, Phases: true, Checksums: true, Index: true})
	l := v21Layout{data: data, chunk0: v2HeaderBytes}
	l.chunk0Rec = l.chunk0 + 4
	frame := func(n int) int { return 4 + n*recordBytes + chunkCRCBytes }
	l.chunk0CRC = l.chunk0 + 4 + 4*recordBytes
	l.endMarker = v2HeaderBytes + frame(4) + frame(4) + frame(2)
	l.trailer = l.endMarker + 4
	l.index = l.trailer + 8
	l.indexCRC = l.index + 3*indexEntryBytes
	l.footer = l.indexCRC + chunkCRCBytes
	if want := l.footer + indexFooterBytes; want != len(data) {
		t.Fatalf("layout derives %d bytes, file has %d", want, len(data))
	}
	return l
}

// fixChunk0CRC recomputes chunk 0's CRC after a deliberate body edit,
// so the corruption under test is the edit itself, not the checksum.
func (l v21Layout) fixChunk0CRC(data []byte) {
	crc := crc32.Checksum(data[l.chunk0:l.chunk0CRC], castagnoli)
	binary.LittleEndian.PutUint32(data[l.chunk0CRC:], crc)
}

// fixIndexCRC recomputes the index CRC after a deliberate entry edit.
func (l v21Layout) fixIndexCRC(data []byte) {
	crc := crc32.Checksum(data[l.index:l.indexCRC], castagnoli)
	binary.LittleEndian.PutUint32(data[l.indexCRC:], crc)
}

// readPath is one way of consuming a trace file end to end.
type readPath struct {
	name string
	read func(t *testing.T, data []byte) error
}

// tempTrace writes data to a file for the path-based readers.
func tempTrace(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "corrupt.trace")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// readPaths is every consumer the suite drives over each corruption:
// the streaming reader, slab loading (streaming and parallel indexed),
// the mmap arena, and the seekable cursor.
var readPaths = []readPath{
	{"stream", func(t *testing.T, data []byte) error {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return err
		}
		for {
			if _, ok := r.Next(); !ok {
				break
			}
		}
		return r.Err()
	}},
	{"load-arena", func(t *testing.T, data []byte) error {
		_, err := LoadArena(bytes.NewReader(data))
		return err
	}},
	{"load-arena-file", func(t *testing.T, data []byte) error {
		_, err := LoadArenaFile(tempTrace(t, data))
		return err
	}},
	{"map-arena", func(t *testing.T, data []byte) error {
		a, err := OpenMapArena(tempTrace(t, data))
		if err == nil {
			a.Close()
		}
		return err
	}},
	{"open-at-chunk", func(t *testing.T, data []byte) error {
		c, err := OpenAtChunk(tempTrace(t, data), 0)
		if err != nil {
			return err
		}
		defer c.Close()
		for {
			if _, ok := c.Next(); !ok {
				break
			}
		}
		return c.Err()
	}},
}

func TestCorruptionInjection(t *testing.T) {
	l := buildV21(t)

	// Each case mutates one region of a fresh copy and names the
	// sentinels a reader may legitimately classify the damage as (paths
	// check regions in different orders — a flipped index entry is an
	// entry mismatch to the streaming cross-check but a CRC mismatch to
	// the seekable loader, both naming the index).
	cases := []struct {
		name   string
		mutate func(data []byte)
		want   []error
	}{
		{"header-magic", func(d []byte) { d[0] ^= 0xFF }, []error{ErrHeader}},
		{"header-version", func(d []byte) { d[4] = 9 }, []error{ErrHeader}},
		{"header-unknown-flag", func(d []byte) { d[8] |= 0x10 }, []error{ErrHeader}},
		{"header-gzip-crc-combo", func(d []byte) { d[8] |= byte(v2FlagGzip) }, []error{ErrHeader}},
		{"header-chunk-cap-zero", func(d []byte) {
			binary.LittleEndian.PutUint32(d[12:16], 0)
		}, []error{ErrHeader}},
		{"chunk-count-over-cap", func(d []byte) {
			binary.LittleEndian.PutUint32(d[l.chunk0:], 1<<21)
		}, []error{ErrChunk}},
		{"chunk-count-off-by-one", func(d []byte) {
			binary.LittleEndian.PutUint32(d[l.chunk0:], 3)
		}, []error{ErrChunk, ErrChunkCRC}},
		{"chunk-body-byte", func(d []byte) { d[l.chunk0Rec] ^= 0x01 }, []error{ErrChunkCRC}},
		{"chunk-crc", func(d []byte) { d[l.chunk0CRC] ^= 0x01 }, []error{ErrChunkCRC}},
		{"record-reserved-flag-crc-fixed", func(d []byte) {
			d[l.chunk0Rec+8] |= 0x80 // reserved record flag bit
			l.fixChunk0CRC(d)
		}, []error{ErrRecord}},
		{"record-phase-outside-range-crc-fixed", func(d []byte) {
			d[l.chunk0Rec+10] = 7 // chunk 0's index entry declares 0..1
			l.fixChunk0CRC(d)
		}, []error{ErrIndex}},
		{"end-marker", func(d []byte) { d[l.endMarker] = 1 }, []error{ErrTrailer, ErrChunk, ErrChunkCRC, ErrTruncated}},
		{"trailer-count", func(d []byte) { d[l.trailer] ^= 0x01 }, []error{ErrTrailer}},
		{"index-entry-offset", func(d []byte) { d[l.index] ^= 0x01 }, []error{ErrIndex, ErrIndexCRC}},
		{"index-entry-count", func(d []byte) { d[l.index+8] ^= 0x01 }, []error{ErrIndex, ErrIndexCRC, ErrTrailer}},
		{"index-entry-phase-range", func(d []byte) { d[l.index+13] = 9 }, []error{ErrIndex, ErrIndexCRC}},
		{"index-entry-reserved-crc-fixed", func(d []byte) {
			d[l.index+14] = 1
			l.fixIndexCRC(d)
		}, []error{ErrIndex}},
		{"index-crc", func(d []byte) { d[l.indexCRC] ^= 0x01 }, []error{ErrIndexCRC}},
		{"footer-magic", func(d []byte) { d[l.footer] ^= 0xFF }, []error{ErrIndex}},
		{"footer-chunk-count", func(d []byte) { d[l.footer+4] ^= 0x01 }, []error{ErrIndex}},
		{"footer-index-offset", func(d []byte) { d[l.footer+8] ^= 0x01 }, []error{ErrIndex}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := bytes.Clone(l.data)
			tc.mutate(data)
			if bytes.Equal(data, l.data) {
				t.Fatal("mutation did not change the file")
			}
			for _, p := range readPaths {
				err := p.read(t, data)
				if err == nil {
					t.Errorf("%s: corrupt file read silently", p.name)
					continue
				}
				matched := false
				for _, want := range tc.want {
					if errors.Is(err, want) {
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("%s: error %v does not wrap any of %v", p.name, err, tc.want)
				}
			}
		})
	}

	t.Run("trailing-garbage", func(t *testing.T) {
		data := append(bytes.Clone(l.data), 0x00)
		for _, p := range readPaths {
			err := p.read(t, data)
			if err == nil {
				t.Errorf("%s: trailing garbage read silently", p.name)
			} else if !errors.Is(err, ErrTrailer) && !errors.Is(err, ErrIndex) {
				t.Errorf("%s: error %v wraps neither ErrTrailer nor ErrIndex", p.name, err)
			}
		}
	})
}

// TestCorruptionTruncation cuts the container at every byte boundary —
// which covers every structural boundary — and demands that every read
// path rejects every prefix with a named sentinel.
func TestCorruptionTruncation(t *testing.T) {
	l := buildV21(t)
	sentinels := []error{
		ErrHeader, ErrRecord, ErrChunk, ErrChunkCRC, ErrTrailer,
		ErrIndex, ErrIndexCRC, ErrTruncated,
	}
	for cut := 0; cut < len(l.data); cut++ {
		data := l.data[:cut]
		for _, p := range readPaths {
			err := p.read(t, data)
			if err == nil {
				t.Fatalf("%s: %d-byte truncation read silently", p.name, cut)
			}
			matched := false
			for _, want := range sentinels {
				if errors.Is(err, want) {
					matched = true
					break
				}
			}
			if !matched {
				t.Fatalf("%s: truncation at %d: error %v wraps no region sentinel", p.name, cut, err)
			}
		}
	}
}
