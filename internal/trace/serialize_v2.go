package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Format v2 container (see docs/TRACEFORMAT.md for the normative spec):
// a 16-byte self-describing header followed by a body of chunks, where
// the body is optionally one gzip stream. Each chunk is a 4-byte record
// count n > 0 followed by n 12-byte records — and, under stream-flag
// bit 2, a 4-byte CRC32C over the count and records. A count of 0
// terminates the body and is followed by an 8-byte total-record-count
// trailer; under stream-flag bit 3 a seekable chunk index (one entry
// per chunk, an index CRC, and a fixed footer at end-of-file) follows
// the trailer. Chunking bounds both writer and reader memory to one
// chunk, so arbitrarily long traces stream through pipes, sockets and
// compressed files without ever being materialised.
const (
	// v2 header stream-flag bits. Unknown bits are rejected on read.
	// Bit 1 advertises per-record phase ids in record byte 10; readers
	// without phase support reject it loudly rather than replaying a
	// file whose segmentation they would silently drop on re-write.
	// Bits 2 (per-chunk CRC32C) and 3 (seekable chunk index) are the
	// integrity/seekability extensions for uncompressed bodies; both
	// are invalid in combination with bit 0 (a gzip body carries its
	// own CRC32 and its chunks have no addressable file offsets).
	v2FlagGzip   = 1 << 0
	v2FlagPhases = 1 << 1
	v2FlagCRC    = 1 << 2
	v2FlagIndex  = 1 << 3
	v2FlagKnown  = v2FlagGzip | v2FlagPhases | v2FlagCRC | v2FlagIndex

	// DefaultChunkRecords is the writer's default chunk granularity:
	// big enough to amortise per-chunk overhead and give gzip useful
	// windows, small enough that a chunk is ~96 KB of buffer.
	DefaultChunkRecords = 8192

	// MaxChunkRecords bounds the chunk size a reader will allocate for,
	// so a corrupt or hostile header cannot demand an absurd buffer.
	MaxChunkRecords = 1 << 20

	// chunkCRCBytes is the per-chunk checksum width under stream-flag
	// bit 2.
	chunkCRCBytes = 4

	// v2HeaderBytes is the combined common + v2 header size; the first
	// chunk's count field sits at this file offset.
	v2HeaderBytes = 16

	// v2EndBytes is the end marker (uint32 0) plus the uint64 trailer.
	v2EndBytes = 12
)

// castagnoli is the CRC32C polynomial table shared by the chunk and
// index checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// V2Options configures WriteV2 and NewV2Writer.
type V2Options struct {
	// Compress gzips the body (header stays plain so Version/flags are
	// readable without decompression). Incompatible with Checksums and
	// Index: the gzip stream carries its own end-to-end CRC32, and its
	// chunks have no file offsets an index could address.
	Compress bool
	// ChunkRecords is the number of records per chunk; 0 means
	// DefaultChunkRecords.
	ChunkRecords int
	// Phases stamps each record's phase id into record byte 10 and
	// sets stream-flag bit 1 so readers know to decode it. Without it
	// phase annotations are discarded (byte 10 stays reserved-zero) and
	// the file reads identically to a pre-phase v2 trace.
	Phases bool
	// Checksums appends a CRC32C to every chunk (stream-flag bit 2), so
	// uncompressed bodies get the end-to-end integrity gzip bodies get
	// from the deflate CRC — at chunk granularity, verifiable by
	// seekable consumers chunk by chunk.
	Checksums bool
	// Index appends a seekable chunk index after the trailer
	// (stream-flag bit 3): per chunk its file offset, record count and
	// phase-id range, plus an index CRC and a fixed footer. It is what
	// lets LoadArenaFile decode chunks in parallel and
	// OpenAtChunk/OpenAtPhase start replay mid-file.
	Index bool
}

func (o V2Options) chunkRecords() (int, error) {
	c := o.ChunkRecords
	if c == 0 {
		c = DefaultChunkRecords
	}
	if c < 1 || c > MaxChunkRecords {
		return 0, fmt.Errorf("trace: chunk size %d outside [1, %d]", c, MaxChunkRecords)
	}
	return c, nil
}

// WriteV2 serialises the full stream to w in format v2 and returns the
// record count. Memory use is bounded by one chunk (plus 16 bytes per
// chunk when an index is requested) regardless of the stream length; if
// s implements BatchStream the chunk buffer is filled in bulk. Unlike
// v1 there is no practical length limit (the trailer is 64-bit).
func WriteV2(w io.Writer, s Stream, o V2Options) (int64, error) {
	vw, err := NewV2Writer(w, o)
	if err != nil {
		return 0, err
	}
	insts := make([]Inst, vw.chunkCap)
	for {
		n := Fill(s, insts)
		if n == 0 {
			break
		}
		if err := vw.Append(insts[:n]...); err != nil {
			return vw.Count(), err
		}
	}
	return vw.Count(), vw.Close()
}

// V2Writer is the push-side counterpart of WriteV2: records are
// appended as they become available instead of being pulled from a
// Stream, which is what lets a live simulation capture its own replay
// (TeeStream) or several phases append into one container
// (System.RunDutyCycleCapture). Memory use is bounded by one chunk,
// plus one 16-byte index entry per flushed chunk when Index is on. The
// container is invalid until Close writes the end marker, trailer and
// (when enabled) index.
type V2Writer struct {
	bw        *bufio.Writer
	body      io.Writer // bw or the gzip layer
	gz        *gzip.Writer
	phases    bool
	checksums bool
	index     bool

	chunkCap int
	raw      []byte // one encoded chunk: 4-byte count + records + CRC room
	n        int    // records pending in raw
	total    int64  // records flushed + pending

	off        int64        // file offset the next chunk frame lands at
	entries    []IndexEntry // one per flushed chunk, when index is on
	pMin, pMax uint8        // phase-id range of the pending chunk

	err    error
	closed bool
}

// NewV2Writer writes the v2 header to w and returns a writer ready to
// Append records.
func NewV2Writer(w io.Writer, o V2Options) (*V2Writer, error) {
	chunkRecs, err := o.chunkRecords()
	if err != nil {
		return nil, err
	}
	if o.Compress && (o.Checksums || o.Index) {
		return nil, fmt.Errorf("trace: %w: per-chunk checksums and the chunk index need an uncompressed body (gzip carries its own CRC and hides chunk offsets)", ErrHeader)
	}
	bw := bufio.NewWriter(w)
	var hdr [v2HeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], traceVersionV2)
	var flags uint32
	if o.Compress {
		flags |= v2FlagGzip
	}
	if o.Phases {
		flags |= v2FlagPhases
	}
	if o.Checksums {
		flags |= v2FlagCRC
	}
	if o.Index {
		flags |= v2FlagIndex
	}
	binary.LittleEndian.PutUint32(hdr[8:12], flags)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(chunkRecs))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	vw := &V2Writer{
		bw:        bw,
		body:      bw,
		phases:    o.Phases,
		checksums: o.Checksums,
		index:     o.Index,
		chunkCap:  chunkRecs,
		raw:       make([]byte, 4+chunkRecs*recordBytes+chunkCRCBytes),
		off:       v2HeaderBytes,
	}
	if o.Compress {
		vw.gz = gzip.NewWriter(bw)
		vw.body = vw.gz
	}
	return vw, nil
}

// Append encodes the instructions into the pending chunk, flushing full
// chunks to the underlying writer. A write failure is sticky: it is
// returned now and by every later Append/Close.
func (vw *V2Writer) Append(insts ...Inst) error {
	if vw.err != nil {
		return vw.err
	}
	if vw.closed {
		return fmt.Errorf("trace: append to closed V2Writer")
	}
	for _, inst := range insts {
		encodeRecord(vw.raw[4+vw.n*recordBytes:], inst, vw.phases)
		if vw.phases {
			if vw.n == 0 {
				vw.pMin, vw.pMax = inst.Phase, inst.Phase
			} else if inst.Phase < vw.pMin {
				vw.pMin = inst.Phase
			} else if inst.Phase > vw.pMax {
				vw.pMax = inst.Phase
			}
		}
		vw.n++
		vw.total++
		if vw.n == vw.chunkCap {
			if err := vw.flushChunk(); err != nil {
				return err
			}
		}
	}
	return nil
}

// flushChunk writes the pending records (if any) as one chunk,
// appending the chunk CRC and recording the index entry when those
// extensions are on.
func (vw *V2Writer) flushChunk() error {
	if vw.n == 0 {
		return nil
	}
	binary.LittleEndian.PutUint32(vw.raw[0:4], uint32(vw.n))
	frame := vw.raw[:4+vw.n*recordBytes]
	if vw.checksums {
		crc := crc32.Checksum(frame, castagnoli)
		binary.LittleEndian.PutUint32(vw.raw[len(frame):len(frame)+chunkCRCBytes], crc)
		frame = vw.raw[:len(frame)+chunkCRCBytes]
	}
	if _, err := vw.body.Write(frame); err != nil {
		vw.err = err
		return err
	}
	if vw.index {
		e := IndexEntry{Offset: vw.off, Count: vw.n}
		if vw.phases {
			e.MinPhase, e.MaxPhase = vw.pMin, vw.pMax
		}
		vw.entries = append(vw.entries, e)
	}
	vw.off += int64(len(frame))
	vw.n = 0
	return nil
}

// Count returns the number of records appended so far.
func (vw *V2Writer) Count() int64 { return vw.total }

// Close flushes the pending chunk, writes the end marker, the 64-bit
// record-count trailer and (when enabled) the chunk index, and flushes
// every buffering layer. Close is idempotent; later calls return the
// first outcome.
func (vw *V2Writer) Close() error {
	if vw.closed || vw.err != nil {
		return vw.err
	}
	vw.closed = true
	if err := vw.flushChunk(); err != nil {
		return err
	}
	var end [v2EndBytes]byte // 4-byte zero count + 8-byte total trailer
	binary.LittleEndian.PutUint64(end[4:12], uint64(vw.total))
	if _, err := vw.body.Write(end[:]); err != nil {
		vw.err = err
		return err
	}
	vw.off += v2EndBytes
	if vw.index {
		if err := vw.writeIndex(); err != nil {
			return err
		}
	}
	if vw.gz != nil {
		if err := vw.gz.Close(); err != nil {
			vw.err = err
			return err
		}
	}
	if err := vw.bw.Flush(); err != nil {
		vw.err = err
		return err
	}
	return nil
}

// writeIndex emits the chunk index, its CRC and the footer — the last
// bytes of the container.
func (vw *V2Writer) writeIndex() error {
	idx := make([]byte, len(vw.entries)*indexEntryBytes+chunkCRCBytes+indexFooterBytes)
	for i, e := range vw.entries {
		putIndexEntry(idx[i*indexEntryBytes:], e)
	}
	entryBytes := len(vw.entries) * indexEntryBytes
	binary.LittleEndian.PutUint32(idx[entryBytes:], crc32.Checksum(idx[:entryBytes], castagnoli))
	putIndexFooter(idx[entryBytes+chunkCRCBytes:], uint32(len(vw.entries)), vw.off)
	if _, err := vw.body.Write(idx); err != nil {
		vw.err = err
		return err
	}
	vw.off += int64(len(idx))
	return nil
}

// readerV2 holds the v2-specific decoding state of a Reader.
type readerV2 struct {
	body       io.Reader // raw or gzip-decompressed chunk source
	gz         *gzip.Reader
	compressed bool
	phases     bool // stream-flag bit 1: record byte 10 is a phase id
	checksums  bool // stream-flag bit 2: chunks carry a CRC32C
	indexed    bool // stream-flag bit 3: a chunk index follows the trailer
	chunkCap   int

	chunk []Inst // decoded records of the current chunk
	pos   int    // replay cursor within chunk
	raw   []byte // scratch for one encoded chunk

	chunks   uint64       // chunks streamed so far
	chunkOff int64        // file offset of the next chunk frame
	streamed []IndexEntry // what the body actually contained, for the index cross-check
}

// newReaderV2 reads the v2 header tail (flags + chunk capacity) from
// the source positioned just past the 8-byte common header.
func newReaderV2(br *bufio.Reader) (*readerV2, error) {
	var tail [8]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, fmt.Errorf("trace: %w: %w: short v2 header: %v", ErrHeader, ErrTruncated, err)
	}
	flags := binary.LittleEndian.Uint32(tail[0:4])
	if flags&^uint32(v2FlagKnown) != 0 {
		return nil, fmt.Errorf("trace: %w: unknown v2 stream flag bits %#x", ErrHeader, flags&^uint32(v2FlagKnown))
	}
	if flags&v2FlagGzip != 0 && flags&(v2FlagCRC|v2FlagIndex) != 0 {
		return nil, fmt.Errorf("trace: %w: stream flags %#x combine gzip with per-chunk CRC/index (reserved combination)", ErrHeader, flags)
	}
	chunkCap := binary.LittleEndian.Uint32(tail[4:8])
	if chunkCap < 1 || chunkCap > MaxChunkRecords {
		return nil, fmt.Errorf("trace: %w: v2 chunk capacity %d outside [1, %d]", ErrHeader, chunkCap, MaxChunkRecords)
	}
	v2 := &readerV2{
		compressed: flags&v2FlagGzip != 0,
		phases:     flags&v2FlagPhases != 0,
		checksums:  flags&v2FlagCRC != 0,
		indexed:    flags&v2FlagIndex != 0,
		chunkCap:   int(chunkCap),
		raw:        make([]byte, int(chunkCap)*recordBytes),
		chunkOff:   v2HeaderBytes,
	}
	if v2.compressed {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: %w: bad gzip body: %v", ErrChunk, err)
		}
		v2.gz = gz
		v2.body = gz
	} else {
		v2.body = br
	}
	return v2, nil
}

// loadChunk decodes the next chunk into r.v2.chunk. It returns false
// when the stream is finished — either cleanly (end marker, verified
// trailer and, when advertised, verified index) or with r.err set.
func (r *Reader) loadChunk() bool {
	v2 := r.v2
	var cnt [4]byte
	if _, err := io.ReadFull(v2.body, cnt[:]); err != nil {
		r.err = fmt.Errorf("trace: %w: chunk header after %d records: %v", ErrTruncated, r.read, err)
		return false
	}
	n := binary.LittleEndian.Uint32(cnt[0:4])
	if n == 0 {
		// End marker: verify the 8-byte trailer, the index when
		// advertised, and that nothing trails the logical end.
		var trailer [8]byte
		if _, err := io.ReadFull(v2.body, trailer[:]); err != nil {
			r.err = fmt.Errorf("trace: %w: trailer after %d records: %v", ErrTruncated, r.read, err)
			return false
		}
		if total := binary.LittleEndian.Uint64(trailer[:]); total != r.read {
			r.err = fmt.Errorf("trace: %w: trailer count %d, streamed %d records (truncated file?)", ErrTrailer, total, r.read)
			return false
		}
		if v2.indexed {
			if err := v2.verifyStreamedIndex(); err != nil {
				r.err = err
				return false
			}
		}
		// The index (or trailer) must be the end: read one more byte
		// and demand EOF, so concatenation damage cannot pass as valid.
		// For a compressed body this read also forces the gzip checksum
		// verification.
		var one [1]byte
		switch _, err := io.ReadFull(v2.body, one[:]); err {
		case io.EOF:
		case nil:
			r.err = fmt.Errorf("trace: %w: trailing data after trailer", ErrTrailer)
			return false
		default:
			r.err = fmt.Errorf("trace: %w: corrupt body after trailer: %v", ErrChunk, err)
			return false
		}
		if v2.gz != nil {
			if err := v2.gz.Close(); err != nil {
				r.err = fmt.Errorf("trace: %w: corrupt gzip body: %v", ErrChunk, err)
				return false
			}
		}
		return false
	}
	if int(n) > v2.chunkCap {
		r.err = fmt.Errorf("trace: %w: chunk of %d records exceeds declared capacity %d", ErrChunk, n, v2.chunkCap)
		return false
	}
	raw := v2.raw[:int(n)*recordBytes]
	if _, err := io.ReadFull(v2.body, raw); err != nil {
		r.err = fmt.Errorf("trace: %w: chunk after %d records: %v", ErrTruncated, r.read, err)
		return false
	}
	if v2.checksums {
		var crcb [chunkCRCBytes]byte
		if _, err := io.ReadFull(v2.body, crcb[:]); err != nil {
			r.err = fmt.Errorf("trace: %w: chunk checksum after %d records: %v", ErrTruncated, r.read, err)
			return false
		}
		want := binary.LittleEndian.Uint32(crcb[:])
		got := crc32.Update(crc32.Checksum(cnt[:], castagnoli), castagnoli, raw)
		if got != want {
			r.err = fmt.Errorf("trace: %w: chunk %d (records %d..%d): stored %08x, computed %08x",
				ErrChunkCRC, v2.chunks, r.read, r.read+uint64(n)-1, want, got)
			return false
		}
	}
	if cap(v2.chunk) < int(n) {
		v2.chunk = make([]Inst, int(n))
	}
	v2.chunk = v2.chunk[:int(n)]
	var pMin, pMax uint8
	for i := range v2.chunk {
		inst, err := decodeRecord(raw[i*recordBytes:], v2.phases)
		if err != nil {
			r.err = fmt.Errorf("%w (record %d)", err, r.read+uint64(i))
			return false
		}
		if v2.phases {
			if i == 0 {
				pMin, pMax = inst.Phase, inst.Phase
			} else if inst.Phase < pMin {
				pMin = inst.Phase
			} else if inst.Phase > pMax {
				pMax = inst.Phase
			}
		} else if raw[i*recordBytes+10] != 0 {
			r.stray++
		}
		v2.chunk[i] = inst
	}
	if v2.indexed {
		v2.streamed = append(v2.streamed, IndexEntry{
			Offset: v2.chunkOff, Count: int(n), MinPhase: pMin, MaxPhase: pMax,
		})
	}
	frame := int64(4 + int(n)*recordBytes)
	if v2.checksums {
		frame += chunkCRCBytes
	}
	v2.chunkOff += frame
	v2.chunks++
	v2.pos = 0
	return true
}

// verifyStreamedIndex reads the chunk index, its CRC and the footer
// from the body and cross-checks every entry against the chunks that
// were actually streamed. Called with the body positioned just past the
// trailer; on success the next read must hit EOF.
func (v2 *readerV2) verifyStreamedIndex() error {
	idx := make([]byte, len(v2.streamed)*indexEntryBytes)
	if _, err := io.ReadFull(v2.body, idx); err != nil {
		return fmt.Errorf("trace: %w: %w: index after %d chunks: %v", ErrIndex, ErrTruncated, v2.chunks, err)
	}
	for i := range v2.streamed {
		e, err := getIndexEntry(idx[i*indexEntryBytes:])
		if err != nil {
			return fmt.Errorf("%w (entry %d)", err, i)
		}
		if e != v2.streamed[i] {
			return fmt.Errorf("trace: %w: entry %d is %+v, streamed chunk was %+v", ErrIndex, i, e, v2.streamed[i])
		}
	}
	var crcb [chunkCRCBytes]byte
	if _, err := io.ReadFull(v2.body, crcb[:]); err != nil {
		return fmt.Errorf("trace: %w: %w: index checksum: %v", ErrIndexCRC, ErrTruncated, err)
	}
	if want, got := binary.LittleEndian.Uint32(crcb[:]), crc32.Checksum(idx, castagnoli); want != got {
		return fmt.Errorf("trace: %w: stored %08x, computed %08x", ErrIndexCRC, want, got)
	}
	var fb [indexFooterBytes]byte
	if _, err := io.ReadFull(v2.body, fb[:]); err != nil {
		return fmt.Errorf("trace: %w: %w: index footer: %v", ErrIndex, ErrTruncated, err)
	}
	chunks, indexOff, err := getIndexFooter(fb[:])
	if err != nil {
		return err
	}
	if chunks != uint32(len(v2.streamed)) {
		return fmt.Errorf("trace: %w: footer declares %d chunks, streamed %d", ErrIndex, chunks, len(v2.streamed))
	}
	if wantOff := v2.chunkOff + v2EndBytes; indexOff != wantOff {
		return fmt.Errorf("trace: %w: footer index offset %d, index started at %d", ErrIndex, indexOff, wantOff)
	}
	return nil
}

// nextV2 returns the next record of a v2 file, loading chunks on
// demand.
func (r *Reader) nextV2() (Inst, bool) {
	v2 := r.v2
	if v2.pos >= len(v2.chunk) {
		if !r.loadChunk() {
			r.done = true
			return Inst{}, false
		}
	}
	inst := v2.chunk[v2.pos]
	v2.pos++
	r.read++
	return inst, true
}

// nextBatchV2 copies decoded records out of the chunk buffer in bulk.
func (r *Reader) nextBatchV2(buf []Inst) int {
	if r.done || r.err != nil {
		return 0
	}
	v2 := r.v2
	n := 0
	for n < len(buf) {
		if v2.pos >= len(v2.chunk) {
			if !r.loadChunk() {
				r.done = true
				break
			}
		}
		c := copy(buf[n:], v2.chunk[v2.pos:])
		v2.pos += c
		r.read += uint64(c)
		n += c
	}
	return n
}
