package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
)

// Format v2 container (see docs/TRACEFORMAT.md for the normative spec):
// a 16-byte self-describing header followed by a body of chunks, where
// the body is optionally one gzip stream. Each chunk is a 4-byte record
// count n > 0 followed by n 12-byte records; a count of 0 terminates
// the body and is followed by an 8-byte total-record-count trailer.
// Chunking bounds both writer and reader memory to one chunk, so
// arbitrarily long traces stream through pipes, sockets and compressed
// files without ever being materialised.
const (
	// v2 header stream-flag bits. Unknown bits are rejected on read.
	// Bit 1 advertises per-record phase ids in record byte 10; readers
	// without phase support reject it loudly rather than replaying a
	// file whose segmentation they would silently drop on re-write.
	v2FlagGzip   = 1 << 0
	v2FlagPhases = 1 << 1
	v2FlagKnown  = v2FlagGzip | v2FlagPhases

	// DefaultChunkRecords is the writer's default chunk granularity:
	// big enough to amortise per-chunk overhead and give gzip useful
	// windows, small enough that a chunk is ~96 KB of buffer.
	DefaultChunkRecords = 8192

	// MaxChunkRecords bounds the chunk size a reader will allocate for,
	// so a corrupt or hostile header cannot demand an absurd buffer.
	MaxChunkRecords = 1 << 20
)

// V2Options configures WriteV2 and NewV2Writer.
type V2Options struct {
	// Compress gzips the body (header stays plain so Version/flags are
	// readable without decompression).
	Compress bool
	// ChunkRecords is the number of records per chunk; 0 means
	// DefaultChunkRecords.
	ChunkRecords int
	// Phases stamps each record's phase id into record byte 10 and
	// sets stream-flag bit 1 so readers know to decode it. Without it
	// phase annotations are discarded (byte 10 stays reserved-zero) and
	// the file reads identically to a pre-phase v2 trace.
	Phases bool
}

func (o V2Options) chunkRecords() (int, error) {
	c := o.ChunkRecords
	if c == 0 {
		c = DefaultChunkRecords
	}
	if c < 1 || c > MaxChunkRecords {
		return 0, fmt.Errorf("trace: chunk size %d outside [1, %d]", c, MaxChunkRecords)
	}
	return c, nil
}

// WriteV2 serialises the full stream to w in format v2 and returns the
// record count. Memory use is bounded by one chunk regardless of the
// stream length; if s implements BatchStream the chunk buffer is filled
// in bulk. Unlike v1 there is no practical length limit (the trailer is
// 64-bit).
func WriteV2(w io.Writer, s Stream, o V2Options) (int64, error) {
	vw, err := NewV2Writer(w, o)
	if err != nil {
		return 0, err
	}
	insts := make([]Inst, vw.chunkCap)
	for {
		n := Fill(s, insts)
		if n == 0 {
			break
		}
		if err := vw.Append(insts[:n]...); err != nil {
			return vw.Count(), err
		}
	}
	return vw.Count(), vw.Close()
}

// V2Writer is the push-side counterpart of WriteV2: records are
// appended as they become available instead of being pulled from a
// Stream, which is what lets a live simulation capture its own replay
// (TeeStream) or several phases append into one container
// (System.RunDutyCycleCapture). Memory use is bounded by one chunk. The
// container is invalid until Close writes the end marker and trailer.
type V2Writer struct {
	bw     *bufio.Writer
	body   io.Writer // bw or the gzip layer
	gz     *gzip.Writer
	phases bool

	chunkCap int
	raw      []byte // one encoded chunk: 4-byte count + records
	n        int    // records pending in raw
	total    int64  // records flushed + pending

	err    error
	closed bool
}

// NewV2Writer writes the v2 header to w and returns a writer ready to
// Append records.
func NewV2Writer(w io.Writer, o V2Options) (*V2Writer, error) {
	chunkRecs, err := o.chunkRecords()
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], traceVersionV2)
	var flags uint32
	if o.Compress {
		flags |= v2FlagGzip
	}
	if o.Phases {
		flags |= v2FlagPhases
	}
	binary.LittleEndian.PutUint32(hdr[8:12], flags)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(chunkRecs))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	vw := &V2Writer{
		bw:       bw,
		body:     bw,
		phases:   o.Phases,
		chunkCap: chunkRecs,
		raw:      make([]byte, 4+chunkRecs*recordBytes),
	}
	if o.Compress {
		vw.gz = gzip.NewWriter(bw)
		vw.body = vw.gz
	}
	return vw, nil
}

// Append encodes the instructions into the pending chunk, flushing full
// chunks to the underlying writer. A write failure is sticky: it is
// returned now and by every later Append/Close.
func (vw *V2Writer) Append(insts ...Inst) error {
	if vw.err != nil {
		return vw.err
	}
	if vw.closed {
		return fmt.Errorf("trace: append to closed V2Writer")
	}
	for _, inst := range insts {
		encodeRecord(vw.raw[4+vw.n*recordBytes:], inst, vw.phases)
		vw.n++
		vw.total++
		if vw.n == vw.chunkCap {
			if err := vw.flushChunk(); err != nil {
				return err
			}
		}
	}
	return nil
}

// flushChunk writes the pending records (if any) as one chunk.
func (vw *V2Writer) flushChunk() error {
	if vw.n == 0 {
		return nil
	}
	binary.LittleEndian.PutUint32(vw.raw[0:4], uint32(vw.n))
	if _, err := vw.body.Write(vw.raw[:4+vw.n*recordBytes]); err != nil {
		vw.err = err
		return err
	}
	vw.n = 0
	return nil
}

// Count returns the number of records appended so far.
func (vw *V2Writer) Count() int64 { return vw.total }

// Close flushes the pending chunk, writes the end marker and the
// 64-bit record-count trailer, and flushes every buffering layer. Close
// is idempotent; later calls return the first outcome.
func (vw *V2Writer) Close() error {
	if vw.closed || vw.err != nil {
		return vw.err
	}
	vw.closed = true
	if err := vw.flushChunk(); err != nil {
		return err
	}
	var end [12]byte // 4-byte zero count + 8-byte total trailer
	binary.LittleEndian.PutUint64(end[4:12], uint64(vw.total))
	if _, err := vw.body.Write(end[:]); err != nil {
		vw.err = err
		return err
	}
	if vw.gz != nil {
		if err := vw.gz.Close(); err != nil {
			vw.err = err
			return err
		}
	}
	if err := vw.bw.Flush(); err != nil {
		vw.err = err
		return err
	}
	return nil
}

// readerV2 holds the v2-specific decoding state of a Reader.
type readerV2 struct {
	body       io.Reader // raw or gzip-decompressed chunk source
	gz         *gzip.Reader
	compressed bool
	phases     bool // stream-flag bit 1: record byte 10 is a phase id
	chunkCap   int

	chunk []Inst // decoded records of the current chunk
	pos   int    // replay cursor within chunk
	raw   []byte // scratch for one encoded chunk
}

// newReaderV2 reads the v2 header tail (flags + chunk capacity) from
// the source positioned just past the 8-byte common header.
func newReaderV2(br *bufio.Reader) (*readerV2, error) {
	var tail [8]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, fmt.Errorf("trace: short v2 header: %w", err)
	}
	flags := binary.LittleEndian.Uint32(tail[0:4])
	if flags&^uint32(v2FlagKnown) != 0 {
		return nil, fmt.Errorf("trace: unknown v2 stream flag bits %#x", flags&^uint32(v2FlagKnown))
	}
	chunkCap := binary.LittleEndian.Uint32(tail[4:8])
	if chunkCap < 1 || chunkCap > MaxChunkRecords {
		return nil, fmt.Errorf("trace: v2 chunk capacity %d outside [1, %d]", chunkCap, MaxChunkRecords)
	}
	v2 := &readerV2{
		compressed: flags&v2FlagGzip != 0,
		phases:     flags&v2FlagPhases != 0,
		chunkCap:   int(chunkCap),
		raw:        make([]byte, int(chunkCap)*recordBytes),
	}
	if v2.compressed {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: bad gzip body: %w", err)
		}
		v2.gz = gz
		v2.body = gz
	} else {
		v2.body = br
	}
	return v2, nil
}

// loadChunk decodes the next chunk into r.v2.chunk. It returns false
// when the stream is finished — either cleanly (end marker + verified
// trailer) or with r.err set.
func (r *Reader) loadChunk() bool {
	v2 := r.v2
	var cnt [4]byte
	if _, err := io.ReadFull(v2.body, cnt[:]); err != nil {
		r.err = fmt.Errorf("trace: truncated chunk header after %d records: %w", r.read, err)
		return false
	}
	n := binary.LittleEndian.Uint32(cnt[0:4])
	if n == 0 {
		// End marker: verify the 8-byte trailer and that nothing
		// trails it.
		var trailer [8]byte
		if _, err := io.ReadFull(v2.body, trailer[:]); err != nil {
			r.err = fmt.Errorf("trace: truncated trailer after %d records: %w", r.read, err)
			return false
		}
		if total := binary.LittleEndian.Uint64(trailer[:]); total != r.read {
			r.err = fmt.Errorf("trace: trailer count %d, streamed %d records (truncated file?)", total, r.read)
			return false
		}
		// The trailer must be the end: read one more byte and demand
		// EOF, so concatenation damage cannot pass as valid. For a
		// compressed body this read also forces the gzip checksum
		// verification.
		var one [1]byte
		switch _, err := io.ReadFull(v2.body, one[:]); err {
		case io.EOF:
		case nil:
			r.err = fmt.Errorf("trace: trailing data after trailer")
			return false
		default:
			r.err = fmt.Errorf("trace: corrupt body after trailer: %w", err)
			return false
		}
		if v2.gz != nil {
			if err := v2.gz.Close(); err != nil {
				r.err = fmt.Errorf("trace: corrupt gzip body: %w", err)
				return false
			}
		}
		return false
	}
	if int(n) > v2.chunkCap {
		r.err = fmt.Errorf("trace: chunk of %d records exceeds declared capacity %d", n, v2.chunkCap)
		return false
	}
	raw := v2.raw[:int(n)*recordBytes]
	if _, err := io.ReadFull(v2.body, raw); err != nil {
		r.err = fmt.Errorf("trace: truncated chunk after %d records: %w", r.read, err)
		return false
	}
	if cap(v2.chunk) < int(n) {
		v2.chunk = make([]Inst, int(n))
	}
	v2.chunk = v2.chunk[:int(n)]
	for i := range v2.chunk {
		inst, err := decodeRecord(raw[i*recordBytes:], v2.phases)
		if err != nil {
			r.err = fmt.Errorf("%w (record %d)", err, r.read+uint64(i))
			return false
		}
		if !v2.phases && raw[i*recordBytes+10] != 0 {
			r.stray++
		}
		v2.chunk[i] = inst
	}
	v2.pos = 0
	return true
}

// nextV2 returns the next record of a v2 file, loading chunks on
// demand.
func (r *Reader) nextV2() (Inst, bool) {
	v2 := r.v2
	if v2.pos >= len(v2.chunk) {
		if !r.loadChunk() {
			r.done = true
			return Inst{}, false
		}
	}
	inst := v2.chunk[v2.pos]
	v2.pos++
	r.read++
	return inst, true
}

// nextBatchV2 copies decoded records out of the chunk buffer in bulk.
func (r *Reader) nextBatchV2(buf []Inst) int {
	if r.done || r.err != nil {
		return 0
	}
	v2 := r.v2
	n := 0
	for n < len(buf) {
		if v2.pos >= len(v2.chunk) {
			if !r.loadChunk() {
				r.done = true
				break
			}
		}
		c := copy(buf[n:], v2.chunk[v2.pos:])
		v2.pos += c
		r.read += uint64(c)
		n += c
	}
	return n
}
