package trace

// Trace capture from live replay. A TeeStream sits between a stream and
// its consumer (cpu.Run, a duty-cycle schedule) and writes every
// instruction through to a V2Writer as it is replayed, closing the loop
// the ROADMAP named: a simulation segment — including its phase ids —
// becomes a v2 trace file that later offline sweeps replay
// byte-identically. The tee is transparent: the consumer observes
// exactly the underlying sequence, and the captured file replays with
// bit-identical cpu.Stats to the live run.
//
// The V2Writer is injected rather than owned so several tees can append
// into one container (RunDutyCycleCapture tags and captures each
// schedule phase in turn); the caller finalises the file with
// V2Writer.Close once the last tee is drained.

// TeeStream replays an underlying Stream unchanged while appending
// every instruction to a V2Writer. A sink failure is sticky: the stream
// ends early (Next returns false) and Err reports the write error, so a
// truncated capture can never pass as a complete one.
type TeeStream struct {
	s   Stream
	vw  *V2Writer
	err error
}

// Tee returns a TeeStream capturing s into vw. Use TeeBatch when s
// implements BatchStream, so replay and capture keep their bulk paths.
func Tee(s Stream, vw *V2Writer) *TeeStream {
	return &TeeStream{s: s, vw: vw}
}

// Next implements Stream.
func (t *TeeStream) Next() (Inst, bool) {
	if t.err != nil {
		return Inst{}, false
	}
	inst, ok := t.s.Next()
	if !ok {
		return Inst{}, false
	}
	if err := t.vw.Append(inst); err != nil {
		t.err = err
		return Inst{}, false
	}
	return inst, true
}

// HasPhases implements PhaseAnnotated by forwarding the underlying
// stream's annotation, so teeing never changes how a consumer segments
// its metrics.
func (t *TeeStream) HasPhases() bool { return HasPhases(t.s) }

// Err reports a capture-sink write failure. A nil Err after the stream
// is drained means every replayed instruction reached the writer.
func (t *TeeStream) Err() error { return t.err }

// TeeBatchStream is TeeStream for batched streams: NextBatch pulls one
// chunk from the underlying stream and appends it to the writer in one
// call, preserving the replay fast path end to end.
type TeeBatchStream struct {
	TeeStream
	bs BatchStream
}

// TeeBatch returns a TeeBatchStream capturing s into vw.
func TeeBatch(s BatchStream, vw *V2Writer) *TeeBatchStream {
	return &TeeBatchStream{TeeStream: TeeStream{s: s, vw: vw}, bs: s}
}

// NextBatch implements BatchStream.
func (t *TeeBatchStream) NextBatch(buf []Inst) int {
	if t.err != nil {
		return 0
	}
	n := t.bs.NextBatch(buf)
	if n == 0 {
		return 0
	}
	if err := t.vw.Append(buf[:n]...); err != nil {
		t.err = err
		return 0
	}
	return n
}
