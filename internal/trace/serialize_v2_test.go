package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// writeV2 is a test helper serialising a slice with the given options.
func writeV2(t *testing.T, insts []Inst, o V2Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := WriteV2(&buf, &SliceStream{Insts: insts}, o)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(insts)) {
		t.Fatalf("WriteV2 reported %d records, want %d", n, len(insts))
	}
	return buf.Bytes()
}

func readAll(t *testing.T, r *Reader) []Inst {
	t.Helper()
	var out []Inst
	for {
		inst, ok := r.Next()
		if !ok {
			break
		}
		out = append(out, inst)
	}
	return out
}

func TestV2RoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		o    V2Options
	}{
		{"plain", V2Options{}},
		{"gzip", V2Options{Compress: true}},
		{"tiny-chunks", V2Options{ChunkRecords: 2}},
		{"gzip-tiny-chunks", V2Options{Compress: true, ChunkRecords: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := writeV2(t, sample(), tc.o)
			r, err := NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if r.Version() != 2 {
				t.Errorf("Version() = %d", r.Version())
			}
			if r.Compressed() != tc.o.Compress {
				t.Errorf("Compressed() = %v", r.Compressed())
			}
			got := readAll(t, r)
			if r.Err() != nil {
				t.Fatal(r.Err())
			}
			want := sample()
			if len(got) != len(want) {
				t.Fatalf("replayed %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("record %d: %+v != %+v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestV2EmptyTrace(t *testing.T) {
	data := writeV2(t, nil, V2Options{Compress: true})
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Error("empty trace produced a record")
	}
	if r.Err() != nil {
		t.Error(r.Err())
	}
}

func TestV2NextBatch(t *testing.T) {
	insts := make([]Inst, 1000)
	for i := range insts {
		insts[i] = Inst{PC: uint32(i * 4), IsLoad: i%2 == 0, Addr: uint32(i), UseDist: uint8(i % 4)}
	}
	data := writeV2(t, insts, V2Options{ChunkRecords: 64})
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Odd batch size so batches straddle chunk boundaries.
	buf := make([]Inst, 37)
	var got []Inst
	for {
		n := r.NextBatch(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(got) != len(insts) {
		t.Fatalf("batched replay returned %d records, want %d", len(got), len(insts))
	}
	for i := range insts {
		if got[i] != insts[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], insts[i])
		}
	}
}

func TestV2InterleavedNextAndBatch(t *testing.T) {
	insts := make([]Inst, 200)
	for i := range insts {
		insts[i] = Inst{PC: uint32(i * 4)}
	}
	data := writeV2(t, insts, V2Options{ChunkRecords: 16})
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var got []Inst
	buf := make([]Inst, 7)
	for i := 0; ; i++ {
		if i%2 == 0 {
			inst, ok := r.Next()
			if !ok {
				break
			}
			got = append(got, inst)
		} else {
			n := r.NextBatch(buf)
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(got) != len(insts) {
		t.Fatalf("got %d records, want %d", len(got), len(insts))
	}
	for i := range insts {
		if got[i] != insts[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

// TestV2StreamsThroughPipe proves the no-materialisation property: the
// reader replays from a pipe whose writer is still producing, so it
// cannot possibly be buffering the whole trace (and neither can the
// writer — the pipe has no backing store).
func TestV2StreamsThroughPipe(t *testing.T) {
	const n = 500_000
	insts := func() *SliceStream {
		s := &SliceStream{Insts: make([]Inst, n)}
		for i := range s.Insts {
			s.Insts[i] = Inst{PC: uint32(i * 4), IsLoad: true, Addr: uint32(i), UseDist: 1}
		}
		return s
	}
	pr, pw := io.Pipe()
	go func() {
		_, err := WriteV2(pw, insts(), V2Options{Compress: true, ChunkRecords: 1024})
		pw.CloseWithError(err)
	}()
	r, err := NewReader(pr)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	buf := make([]Inst, 4096)
	for {
		c := r.NextBatch(buf)
		if c == 0 {
			break
		}
		count += c
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if count != n {
		t.Fatalf("streamed %d records, want %d", count, n)
	}
}

func TestV2RejectsUnknownStreamFlags(t *testing.T) {
	data := writeV2(t, sample(), V2Options{})
	// Set a reserved stream-flag bit in the header.
	data[8] |= 0x80
	if _, err := NewReader(bytes.NewReader(data)); err == nil {
		t.Error("unknown v2 stream flag accepted")
	}
}

func TestV2RejectsUnknownRecordFlags(t *testing.T) {
	data := writeV2(t, sample(), V2Options{})
	// First record of the first chunk: header(16) + chunk count(4),
	// flags live at offset 8 of the record.
	data[16+4+8] |= 0x40
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, r)
	if r.Err() == nil {
		t.Error("unknown record flag bits accepted")
	}
}

func TestV2RejectsBadChunkCapacity(t *testing.T) {
	data := writeV2(t, sample(), V2Options{})
	for _, cap := range []uint32{0, MaxChunkRecords + 1} {
		d := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(d[12:16], cap)
		if _, err := NewReader(bytes.NewReader(d)); err == nil {
			t.Errorf("chunk capacity %d accepted", cap)
		}
	}
}

func TestV2TruncationDetected(t *testing.T) {
	data := writeV2(t, sample(), V2Options{ChunkRecords: 2})
	for _, cut := range []int{1, 5, 11, 17} {
		if cut >= len(data) {
			t.Fatalf("test cut %d beyond file length %d", cut, len(data))
		}
		r, err := NewReader(bytes.NewReader(data[:len(data)-cut]))
		if err != nil {
			continue // truncated inside the header: also fine
		}
		readAll(t, r)
		if r.Err() == nil {
			t.Errorf("truncation by %d bytes not detected", cut)
		}
	}
}

func TestV2TrailerMismatchDetected(t *testing.T) {
	data := writeV2(t, sample(), V2Options{})
	// Corrupt the 8-byte trailer (last 8 bytes of an uncompressed file).
	data[len(data)-8] ^= 1
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, r)
	if r.Err() == nil {
		t.Error("trailer mismatch not detected")
	}
}

func TestV2TrailingDataRejected(t *testing.T) {
	// Bytes after the trailer mean concatenation damage; both body
	// modes must reject them.
	for _, compress := range []bool{false, true} {
		data := writeV2(t, sample(), V2Options{Compress: compress})
		data = append(data, 0xAA)
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, r)
		if r.Err() == nil {
			t.Errorf("compress=%v: trailing byte after trailer accepted", compress)
		}
	}
}

func TestV2CorruptGzipDetected(t *testing.T) {
	data := writeV2(t, sample(), V2Options{Compress: true})
	// Flip a byte in the gzip body (past the 16-byte header and the
	// 10-byte gzip stream header so the reader construction succeeds).
	d := append([]byte(nil), data...)
	d[len(d)-5] ^= 0xFF
	r, err := NewReader(bytes.NewReader(d))
	if err != nil {
		return // corrupting the gzip framing itself: also detected
	}
	readAll(t, r)
	if r.Err() == nil {
		t.Error("gzip corruption not detected")
	}
}

func TestV2BadChunkSizeOption(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteV2(&buf, &SliceStream{}, V2Options{ChunkRecords: -1}); err == nil {
		t.Error("negative chunk size accepted")
	}
	if _, err := WriteV2(&buf, &SliceStream{}, V2Options{ChunkRecords: MaxChunkRecords + 1}); err == nil {
		t.Error("oversized chunk accepted")
	}
}

func TestV1RejectsUnknownRecordFlags(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Write(&buf, &SliceStream{Insts: sample()}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[8+8] |= 0x10 // first record's flags byte, reserved bit
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, r)
	if r.Err() == nil {
		t.Error("v1 unknown record flag bits accepted")
	}
}

func TestV1WriteOverflowRejected(t *testing.T) {
	defer func(old uint64) { maxV1Records = old }(maxV1Records)
	maxV1Records = 4
	var buf bytes.Buffer
	if _, err := Write(&buf, &SliceStream{Insts: sample()}); err == nil {
		t.Error("v1 record-count overflow not rejected")
	}
	// At exactly the limit the stream still fits.
	maxV1Records = uint64(len(sample()))
	buf.Reset()
	if n, err := Write(&buf, &SliceStream{Insts: sample()}); err != nil || n != len(sample()) {
		t.Errorf("Write at limit = %d, %v", n, err)
	}
}

func TestV1V2SameStreamSameRecords(t *testing.T) {
	// Both containers must carry the identical record sequence.
	insts := make([]Inst, 777)
	for i := range insts {
		insts[i] = Inst{PC: uint32(i), Addr: uint32(i * 3), IsStore: i%5 == 0, UseDist: uint8(i % 3)}
	}
	var v1 bytes.Buffer
	if _, err := Write(&v1, &SliceStream{Insts: insts}); err != nil {
		t.Fatal(err)
	}
	v2 := writeV2(t, insts, V2Options{Compress: true, ChunkRecords: 100})
	r1, err := NewReader(&v1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewReader(bytes.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	a, b := readAll(t, r1), readAll(t, r2)
	if r1.Err() != nil || r2.Err() != nil {
		t.Fatal(r1.Err(), r2.Err())
	}
	if len(a) != len(b) {
		t.Fatalf("v1 replayed %d records, v2 %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs between containers", i)
		}
	}
}
