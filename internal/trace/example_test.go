package trace_test

import (
	"bytes"
	"fmt"

	"edcache/internal/trace"
)

// ExampleWriteV2 round-trips a small stream through the v2 container:
// write chunked + compressed, read back streaming.
func ExampleWriteV2() {
	insts := []trace.Inst{
		{PC: 0x40_0000, IsLoad: true, Addr: 0x1000_0000, UseDist: 1},
		{PC: 0x40_0004},
		{PC: 0x40_0008, IsBranch: true, Taken: true},
	}
	var buf bytes.Buffer
	n, err := trace.WriteV2(&buf, &trace.SliceStream{Insts: insts}, trace.V2Options{Compress: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("wrote %d records\n", n)

	r, err := trace.NewReader(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Printf("format v%d, compressed=%v\n", r.Version(), r.Compressed())
	for {
		inst, ok := r.Next()
		if !ok {
			break
		}
		fmt.Printf("pc=%#x load=%v branch=%v\n", inst.PC, inst.IsLoad, inst.IsBranch)
	}
	if r.Err() != nil {
		panic(r.Err())
	}
	// Output:
	// wrote 3 records
	// format v2, compressed=true
	// pc=0x400000 load=true branch=false
	// pc=0x400004 load=false branch=false
	// pc=0x400008 load=false branch=true
}

// ExampleReader_NextBatch drains a trace in bulk — the pattern the
// replay fast path uses: one call per chunk instead of one dynamic
// dispatch per instruction.
func ExampleReader_NextBatch() {
	src := make([]trace.Inst, 10)
	for i := range src {
		src[i] = trace.Inst{PC: uint32(0x40_0000 + 4*i)}
	}
	var buf bytes.Buffer
	if _, err := trace.WriteV2(&buf, &trace.SliceStream{Insts: src}, trace.V2Options{ChunkRecords: 4}); err != nil {
		panic(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		panic(err)
	}
	batch := make([]trace.Inst, 3)
	total := 0
	for {
		n := r.NextBatch(batch)
		if n == 0 {
			break
		}
		total += n
	}
	fmt.Printf("replayed %d instructions in batches of ≤%d\n", total, len(batch))
	// Output:
	// replayed 10 instructions in batches of ≤3
}
