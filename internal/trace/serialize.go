package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format: a 12-byte header (magic, version, count) followed
// by fixed-width 12-byte records. The format exists so traces can be
// generated once (cmd/tracegen), archived, and replayed byte-identically
// against any configuration — the workflow the paper's MPSim + binary
// setup implies.
const (
	traceMagic   = 0x45444354 // "EDCT"
	traceVersion = 1
)

// Record flags.
const (
	flagLoad   = 1 << 0
	flagStore  = 1 << 1
	flagBranch = 1 << 2
	flagTaken  = 1 << 3
)

// Write serialises the full stream to w and returns the record count.
func Write(w io.Writer, s Stream) (int, error) {
	bw := bufio.NewWriter(w)
	// The record count lives in a 4-byte *trailer* rather than the
	// header so Write can stream in a single pass over a plain
	// io.Writer (streams don't know their length up front).
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], traceVersion)
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	count := 0
	var rec [12]byte
	for {
		inst, ok := s.Next()
		if !ok {
			break
		}
		binary.LittleEndian.PutUint32(rec[0:4], inst.PC)
		binary.LittleEndian.PutUint32(rec[4:8], inst.Addr)
		var flags byte
		if inst.IsLoad {
			flags |= flagLoad
		}
		if inst.IsStore {
			flags |= flagStore
		}
		if inst.IsBranch {
			flags |= flagBranch
		}
		if inst.Taken {
			flags |= flagTaken
		}
		rec[8] = flags
		rec[9] = inst.UseDist
		rec[10], rec[11] = 0, 0
		if _, err := bw.Write(rec[:]); err != nil {
			return count, err
		}
		count++
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], uint32(count))
	if _, err := bw.Write(trailer[:]); err != nil {
		return count, err
	}
	return count, bw.Flush()
}

// Reader replays a serialised trace as a Stream.
type Reader struct {
	br   *bufio.Reader
	err  error
	done bool
	read uint32 // records streamed so far, checked against the trailer
}

// NewReader validates the header and returns a replaying stream.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %#x", binary.LittleEndian.Uint32(hdr[0:4]))
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &Reader{br: br}, nil
}

// Next implements Stream. The 12-byte records are distinguished from the
// 4-byte trailer by read length: a full record keeps streaming, a short
// tail ends the trace.
func (r *Reader) Next() (Inst, bool) {
	if r.done || r.err != nil {
		return Inst{}, false
	}
	var rec [12]byte
	n, err := io.ReadFull(r.br, rec[:])
	if err != nil {
		r.done = true
		if n == 4 {
			// The 4-byte trailer: validate the record count so a
			// truncated file cannot pass silently.
			if count := binary.LittleEndian.Uint32(rec[0:4]); count != r.read {
				r.err = fmt.Errorf("trace: trailer count %d, streamed %d records (truncated file?)", count, r.read)
			}
			return Inst{}, false
		}
		if err != io.EOF || n != 0 {
			r.err = fmt.Errorf("trace: truncated record after %d records", r.read)
		} else {
			r.err = fmt.Errorf("trace: missing trailer after %d records", r.read)
		}
		return Inst{}, false
	}
	r.read++
	flags := rec[8]
	return Inst{
		PC:       binary.LittleEndian.Uint32(rec[0:4]),
		Addr:     binary.LittleEndian.Uint32(rec[4:8]),
		IsLoad:   flags&flagLoad != 0,
		IsStore:  flags&flagStore != 0,
		IsBranch: flags&flagBranch != 0,
		Taken:    flags&flagTaken != 0,
		UseDist:  rec[9],
	}, true
}

// Err reports a non-EOF read failure encountered during streaming.
func (r *Reader) Err() error { return r.err }
