package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary trace formats. The layouts are specified normatively in
// docs/TRACEFORMAT.md; this file implements the common record codec and
// the v1 (flat) container, serialize_v2.go the v2 (chunked, optionally
// compressed) container. The formats exist so traces can be generated
// once (cmd/tracegen), archived, and replayed byte-identically against
// any configuration — the workflow the paper's MPSim + binary setup
// implies.
const (
	traceMagic     = 0x45444354 // "TCDE" on disk (little-endian "EDCT")
	traceVersionV1 = 1
	traceVersionV2 = 2

	recordBytes = 12
)

// Record flags. Bits 4-7 are reserved and must be zero; readers reject
// records that set them (a set reserved bit means a corrupt file or a
// format revision this reader does not understand).
const (
	flagLoad   = 1 << 0
	flagStore  = 1 << 1
	flagBranch = 1 << 2
	flagTaken  = 1 << 3

	flagKnown = flagLoad | flagStore | flagBranch | flagTaken
)

// maxV1Records is the largest stream a v1 file can carry: the v1
// trailer stores the record count as a uint32. It is a variable only so
// the overflow path is testable without writing 2^32 records.
var maxV1Records uint64 = math.MaxUint32

// encodeRecord serialises one instruction into a 12-byte record. Byte
// 10 carries the phase id only when the stream advertises phases (v2
// stream-flag bit 1); otherwise it stays reserved-zero, which is how
// the v1 writer (v1 is frozen) and phase-less v2 writers discard phase
// annotations.
func encodeRecord(rec []byte, inst Inst, phases bool) {
	binary.LittleEndian.PutUint32(rec[0:4], inst.PC)
	binary.LittleEndian.PutUint32(rec[4:8], inst.Addr)
	var flags byte
	if inst.IsLoad {
		flags |= flagLoad
	}
	if inst.IsStore {
		flags |= flagStore
	}
	if inst.IsBranch {
		flags |= flagBranch
	}
	if inst.Taken {
		flags |= flagTaken
	}
	rec[8] = flags
	rec[9] = inst.UseDist
	rec[10], rec[11] = 0, 0
	if phases {
		rec[10] = inst.Phase
	}
}

// decodeRecord deserialises one 12-byte record, rejecting reserved flag
// bits. Byte 10 is decoded as the phase id only when the stream
// advertises phases; in phase-less streams it is reserved and ignored,
// per the compatibility rules of docs/TRACEFORMAT.md.
func decodeRecord(rec []byte, phases bool) (Inst, error) {
	flags := rec[8]
	if flags&^byte(flagKnown) != 0 {
		return Inst{}, fmt.Errorf("trace: %w: unknown record flag bits %#02x", ErrRecord, flags&^byte(flagKnown))
	}
	inst := Inst{
		PC:       binary.LittleEndian.Uint32(rec[0:4]),
		Addr:     binary.LittleEndian.Uint32(rec[4:8]),
		IsLoad:   flags&flagLoad != 0,
		IsStore:  flags&flagStore != 0,
		IsBranch: flags&flagBranch != 0,
		Taken:    flags&flagTaken != 0,
		UseDist:  rec[9],
	}
	if phases {
		inst.Phase = rec[10]
	}
	return inst, nil
}

// Write serialises the full stream to w in format v1 (flat records, a
// 4-byte count trailer) and returns the record count. v1 is kept for
// compatibility with existing archives; new traces should use WriteV2,
// which streams in bounded memory on both ends and compresses. Streams
// with 2^32 or more records do not fit the v1 trailer and are rejected
// with an error (use WriteV2). v1 is frozen: phase annotations are
// discarded (record byte 10 stays reserved-zero) — phase-aware traces
// need WriteV2 with V2Options.Phases.
func Write(w io.Writer, s Stream) (int, error) {
	bw := bufio.NewWriter(w)
	// The record count lives in a 4-byte *trailer* rather than the
	// header so Write can stream in a single pass over a plain
	// io.Writer (streams don't know their length up front).
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], traceVersionV1)
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	var count uint64
	var rec [recordBytes]byte
	for {
		inst, ok := s.Next()
		if !ok {
			break
		}
		if count >= maxV1Records {
			return int(count), fmt.Errorf("trace: stream exceeds %d records, too long for format v1 (use WriteV2)", maxV1Records)
		}
		encodeRecord(rec[:], inst, false)
		if _, err := bw.Write(rec[:]); err != nil {
			return int(count), err
		}
		count++
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], uint32(count))
	if _, err := bw.Write(trailer[:]); err != nil {
		return int(count), err
	}
	return int(count), bw.Flush()
}

// Reader replays a serialised trace as a Stream. It reads v1 and v2
// files transparently (NewReader sniffs the header version) and never
// materialises the full trace: v1 is decoded record by record, v2 chunk
// by chunk, so multi-million-instruction traces replay in constant
// memory. Reader also implements BatchStream for the replay fast path.
type Reader struct {
	version int
	err     error
	done    bool
	read    uint64 // records streamed so far, checked against the trailer

	// stray counts records whose reserved phase byte (record byte 10)
	// is non-zero in a stream that does not advertise phases. The spec
	// makes readers ignore reserved bytes, so these records replay with
	// Phase 0; the count lets tools (tracegen -verify) surface the
	// header/record mismatch instead of losing it silently.
	stray uint64

	br *bufio.Reader // v1: record source; v2: raw (pre-decompression) source

	v2 *readerV2 // nil for v1 files
}

// NewReader validates the header and returns a replaying stream for a
// v1 or v2 trace file.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: %w: %w: short header: %v", ErrHeader, ErrTruncated, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != traceMagic {
		return nil, fmt.Errorf("trace: %w: bad magic %#x", ErrHeader, binary.LittleEndian.Uint32(hdr[0:4]))
	}
	rd := &Reader{br: br}
	switch v := binary.LittleEndian.Uint32(hdr[4:8]); v {
	case traceVersionV1:
		rd.version = traceVersionV1
	case traceVersionV2:
		rd.version = traceVersionV2
		v2, err := newReaderV2(br)
		if err != nil {
			return nil, err
		}
		rd.v2 = v2
	default:
		return nil, fmt.Errorf("trace: %w: unsupported version %d", ErrHeader, v)
	}
	return rd, nil
}

// Version reports the format version of the file being read (1 or 2).
func (r *Reader) Version() int { return r.version }

// Compressed reports whether the file's body is gzip-compressed (always
// false for v1).
func (r *Reader) Compressed() bool { return r.v2 != nil && r.v2.compressed }

// HasPhases implements PhaseAnnotated: it reports whether the file
// advertises per-record phase ids (v2 stream-flag bit 1; always false
// for v1 and phase-less v2 files).
func (r *Reader) HasPhases() bool { return r.v2 != nil && r.v2.phases }

// HasChecksums reports whether the file carries per-chunk CRC32C
// checksums (v2 stream-flag bit 2). Gzip bodies report false here —
// their integrity comes from the deflate stream's own CRC32.
func (r *Reader) HasChecksums() bool { return r.v2 != nil && r.v2.checksums }

// HasIndex reports whether the file carries a seekable chunk index (v2
// stream-flag bit 3). When true, the streaming reader cross-checks the
// index against the chunks it streamed before declaring the trace
// clean.
func (r *Reader) HasIndex() bool { return r.v2 != nil && r.v2.indexed }

// Chunks reports how many chunks have been streamed so far (0 for v1
// files, the file's chunk total once the stream finishes cleanly).
func (r *Reader) Chunks() uint64 {
	if r.v2 == nil {
		return 0
	}
	return r.v2.chunks
}

// ChunkCap reports the file's declared per-chunk record capacity (0 for
// v1 files, which are not chunked).
func (r *Reader) ChunkCap() int {
	if r.v2 == nil {
		return 0
	}
	return r.v2.chunkCap
}

// UnadvertisedPhaseBytes counts the records streamed so far whose
// reserved phase byte was non-zero although the stream does not
// advertise phases. Those records replay with Phase 0 (reserved bytes
// are ignored by spec); a non-zero count means the file was produced by
// a writer that stamped phase ids without setting stream-flag bit 1,
// and tools should report it rather than ignore it silently.
func (r *Reader) UnadvertisedPhaseBytes() uint64 { return r.stray }

// Next implements Stream.
func (r *Reader) Next() (Inst, bool) {
	if r.done || r.err != nil {
		return Inst{}, false
	}
	if r.v2 != nil {
		return r.nextV2()
	}
	return r.nextV1()
}

// nextV1 decodes one flat v1 record. The 12-byte records are
// distinguished from the 4-byte trailer by read length: a full record
// keeps streaming, a short tail ends the trace.
func (r *Reader) nextV1() (Inst, bool) {
	var rec [recordBytes]byte
	n, err := io.ReadFull(r.br, rec[:])
	if err != nil {
		r.done = true
		if n == 4 {
			// The 4-byte trailer: validate the record count so a
			// truncated file cannot pass silently.
			if count := binary.LittleEndian.Uint32(rec[0:4]); uint64(count) != r.read {
				r.err = fmt.Errorf("trace: %w: trailer count %d, streamed %d records (truncated file?)", ErrTrailer, count, r.read)
			}
			return Inst{}, false
		}
		if err != io.EOF || n != 0 {
			r.err = fmt.Errorf("trace: %w: truncated record after %d records", ErrTruncated, r.read)
		} else {
			r.err = fmt.Errorf("trace: %w: %w: missing trailer after %d records", ErrTrailer, ErrTruncated, r.read)
		}
		return Inst{}, false
	}
	inst, err := decodeRecord(rec[:], false)
	if err != nil {
		r.done = true
		r.err = fmt.Errorf("%w (record %d)", err, r.read)
		return Inst{}, false
	}
	if rec[10] != 0 {
		r.stray++
	}
	r.read++
	return inst, true
}

// NextBatch implements BatchStream: it fills buf with up to len(buf)
// consecutive instructions and returns how many were produced. For v2
// files the records are decoded straight out of the chunk buffer with
// no per-instruction indirection.
func (r *Reader) NextBatch(buf []Inst) int {
	if r.v2 != nil {
		return r.nextBatchV2(buf)
	}
	return fillFromNext(r.Next, buf)
}

// Err reports a non-EOF read failure encountered during streaming.
func (r *Reader) Err() error { return r.err }
