//go:build unix

package trace

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The returned release func
// unmaps; data stays valid until it runs. An empty file maps to an
// empty slice with a no-op release (mmap of length 0 is an error on
// most kernels, and there is nothing to map).
func mapFile(f *os.File, size int64) (data []byte, release func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if int64(int(size)) != size {
		return nil, nil, syscall.EFBIG
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
