package trace_test

import (
	"errors"
	"reflect"
	"testing"

	"edcache/internal/trace"
)

// Seekable-open tests: OpenAtChunk and OpenAtPhase must replay exactly
// the suffix the index promises, without the prefix, and refuse files
// that cannot support it.

func TestOpenAtChunkReplaysSuffix(t *testing.T) {
	const chunkRecs = 64
	insts := randomInsts(1000, true, 13) // 15 chunks of 64 + one of 40
	path := writeTraceFile(t, insts, trace.V2Options{ChunkRecords: chunkRecs, Phases: true, Checksums: true, Index: true})
	for _, chunk := range []int{0, 1, 7, 15} {
		c, err := trace.OpenAtChunk(path, chunk)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if !c.HasPhases() {
			t.Errorf("chunk %d: cursor lost the phase bit", chunk)
		}
		got := drain(c, chunk%3)
		if err := c.Err(); err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		c.Close()
		if want := insts[chunk*chunkRecs:]; !reflect.DeepEqual(got, want) {
			t.Errorf("chunk %d: replayed %d records, want the %d-record suffix", chunk, len(got), len(want))
		}
	}
	if _, err := trace.OpenAtChunk(path, 16); err == nil {
		t.Error("out-of-range chunk accepted")
	}
	if _, err := trace.OpenAtChunk(path, -1); err == nil {
		t.Error("negative chunk accepted")
	}
}

func TestOpenAtPhaseSkipsPrefix(t *testing.T) {
	// randomInsts(1000, true, …) stamps phases 0..3 in four equal runs,
	// so each phase starts at a known record index.
	insts := randomInsts(1000, true, 17)
	path := writeTraceFile(t, insts, trace.V2Options{ChunkRecords: 64, Phases: true, Checksums: true, Index: true})
	for phase := uint8(0); phase < 4; phase++ {
		first := -1
		for i, inst := range insts {
			if inst.Phase == phase {
				first = i
				break
			}
		}
		if first < 0 {
			t.Fatalf("phase %d missing from the fixture", phase)
		}
		c, err := trace.OpenAtPhase(path, phase)
		if err != nil {
			t.Fatalf("phase %d: %v", phase, err)
		}
		got := drain(c, int(phase)%3)
		if err := c.Err(); err != nil {
			t.Fatalf("phase %d: %v", phase, err)
		}
		c.Close()
		if want := insts[first:]; !reflect.DeepEqual(got, want) {
			t.Errorf("phase %d: replay does not start at record %d", phase, first)
		}
	}
	if _, err := trace.OpenAtPhase(path, 200); !errors.Is(err, trace.ErrPhaseNotFound) {
		t.Errorf("absent phase: error %v, want ErrPhaseNotFound", err)
	}
}

// TestOpenAtPhaseUnphasedFile pins the degenerate contract: a
// phase-less file replays entirely as phase 0, so OpenAtPhase(0) is
// the whole trace and any other id is absent.
func TestOpenAtPhaseUnphasedFile(t *testing.T) {
	insts := randomInsts(100, false, 19)
	path := writeTraceFile(t, insts, trace.V2Options{ChunkRecords: 16, Checksums: true, Index: true})
	c, err := trace.OpenAtPhase(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(c, 2)
	c.Close()
	if !reflect.DeepEqual(got, insts) {
		t.Error("phase 0 of an unphased file is not the whole trace")
	}
	if _, err := trace.OpenAtPhase(path, 1); !errors.Is(err, trace.ErrPhaseNotFound) {
		t.Errorf("phase 1 of an unphased file: error %v, want ErrPhaseNotFound", err)
	}
}

func TestOpenAtRequiresIndex(t *testing.T) {
	insts := randomInsts(100, false, 23)
	path := writeTraceFile(t, insts, trace.V2Options{ChunkRecords: 16, Checksums: true})
	if _, err := trace.OpenAtChunk(path, 0); !errors.Is(err, trace.ErrNoIndex) {
		t.Errorf("OpenAtChunk on unindexed file: error %v, want ErrNoIndex", err)
	}
	if _, err := trace.OpenAtPhase(path, 0); !errors.Is(err, trace.ErrNoIndex) {
		t.Errorf("OpenAtPhase on unindexed file: error %v, want ErrNoIndex", err)
	}
}
