package trace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// The cross-version compat matrix: every container variant the format
// family defines — v1, v2 plain/gzip/phased, and the v2.1 CRC/index
// extensions — is written, read through every consumer path that must
// accept it, checked against the paths that must reject it, and
// re-serialised bit-identically.

// compatVariant is one container variant of the matrix.
type compatVariant struct {
	name string
	v1   bool
	o    V2Options // ignored for v1
}

var compatVariants = []compatVariant{
	{name: "v1", v1: true},
	{name: "v2", o: V2Options{ChunkRecords: 4}},
	{name: "v2-gzip", o: V2Options{ChunkRecords: 4, Compress: true}},
	{name: "v2-phases", o: V2Options{ChunkRecords: 4, Phases: true}},
	{name: "v2-gzip-phases", o: V2Options{ChunkRecords: 4, Compress: true, Phases: true}},
	{name: "v21-crc", o: V2Options{ChunkRecords: 4, Checksums: true}},
	{name: "v21-index", o: V2Options{ChunkRecords: 4, Index: true}},
	{name: "v21-crc-index", o: V2Options{ChunkRecords: 4, Checksums: true, Index: true}},
	{name: "v21-crc-index-phases", o: V2Options{ChunkRecords: 4, Checksums: true, Index: true, Phases: true}},
	{name: "v21-crc-index-one-chunk", o: V2Options{ChunkRecords: 64, Checksums: true, Index: true}},
}

// write serialises insts in the variant's format.
func (v compatVariant) write(t *testing.T, insts []Inst) []byte {
	t.Helper()
	if !v.v1 {
		return writeV2(t, insts, v.o)
	}
	var buf bytes.Buffer
	if _, err := Write(&buf, &SliceStream{Insts: insts}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// expected is what any reader must produce from the variant's file:
// phase ids survive only when the variant advertises them.
func (v compatVariant) expected(insts []Inst) []Inst {
	out := make([]Inst, len(insts))
	copy(out, insts)
	if v.v1 || !v.o.Phases {
		for i := range out {
			out[i].Phase = 0
		}
	}
	return out
}

func TestCompatMatrix(t *testing.T) {
	insts := corpusInsts()
	for _, v := range compatVariants {
		t.Run(v.name, func(t *testing.T) {
			data := v.write(t, insts)
			want := v.expected(insts)
			path := filepath.Join(t.TempDir(), "compat.trace")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}

			// Streaming: accepted, with the right capability bits.
			r, err := NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			got := readAll(t, r)
			if err := r.Err(); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Error("streamed records differ from written records")
			}
			if !v.v1 {
				if r.HasChecksums() != v.o.Checksums {
					t.Errorf("HasChecksums() = %v, want %v", r.HasChecksums(), v.o.Checksums)
				}
				if r.HasIndex() != v.o.Index {
					t.Errorf("HasIndex() = %v, want %v", r.HasIndex(), v.o.Index)
				}
				if r.HasPhases() != v.o.Phases {
					t.Errorf("HasPhases() = %v, want %v", r.HasPhases(), v.o.Phases)
				}
			}

			// Slab loading, streaming and file-backed (the latter takes
			// the parallel path for indexed variants).
			for _, load := range []struct {
				name string
				do   func() (*Arena, error)
			}{
				{"LoadArena", func() (*Arena, error) { return LoadArena(bytes.NewReader(data)) }},
				{"LoadArenaFile", func() (*Arena, error) { return LoadArenaFile(path) }},
			} {
				a, err := load.do()
				if err != nil {
					t.Fatalf("%s: %v", load.name, err)
				}
				if got := drainAll(a.NewCursor()); !reflect.DeepEqual(got, want) {
					t.Errorf("%s records differ", load.name)
				}
			}

			// Mmap: every uncompressed variant maps, gzip must be refused
			// with ErrNotMappable (and OpenSlab must then fall back).
			ma, err := OpenMapArena(path)
			if v.v1 || !v.o.Compress {
				if err != nil {
					t.Fatalf("OpenMapArena: %v", err)
				}
				if got := drainAll(ma.NewCursor()); !reflect.DeepEqual(got, want) {
					t.Error("mmap records differ")
				}
				ma.Close()
			} else if !errors.Is(err, ErrNotMappable) {
				t.Errorf("OpenMapArena on gzip: error %v, want ErrNotMappable", err)
			}
			slab, err := OpenSlab(path, 1) // threshold 1: always try mapping
			if err != nil {
				t.Fatalf("OpenSlab: %v", err)
			}
			if got := drainAll(slab.NewCursor()); !reflect.DeepEqual(got, want) {
				t.Error("OpenSlab records differ")
			}
			if c, ok := slab.(interface{ Close() error }); ok {
				c.Close()
			}

			// Seekable opens: indexed variants replay from chunk 0, the
			// rest are refused with ErrNoIndex.
			fc, err := OpenAtChunk(path, 0)
			if !v.v1 && v.o.Index {
				if err != nil {
					t.Fatalf("OpenAtChunk: %v", err)
				}
				got := drainAll(fc)
				if err := fc.Err(); err != nil {
					t.Fatal(err)
				}
				fc.Close()
				if !reflect.DeepEqual(got, want) {
					t.Error("OpenAtChunk records differ")
				}
			} else if !errors.Is(err, ErrNoIndex) {
				t.Errorf("OpenAtChunk on unindexed file: error %v, want ErrNoIndex", err)
			}

			// Bit-identity: re-serialising what was read, with the same
			// options, must reproduce the file byte for byte.
			var buf bytes.Buffer
			if v.v1 {
				if _, err := Write(&buf, &SliceStream{Insts: got}); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := WriteV2(&buf, &SliceStream{Insts: got}, v.o); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(buf.Bytes(), data) {
				t.Error("re-serialisation is not bit-identical")
			}
		})
	}
}

// drainAll empties a stream via its batch path.
func drainAll(s Stream) []Inst {
	var out []Inst
	buf := make([]Inst, 7)
	for {
		n := Fill(s, buf)
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

// TestCompatRejectsFutureBits proves forward compatibility is loud: a
// file advertising a stream-flag bit this reader does not know is
// rejected by every path with ErrHeader, not replayed with the unknown
// extension silently ignored.
func TestCompatRejectsFutureBits(t *testing.T) {
	data := writeV2(t, corpusInsts(), V2Options{ChunkRecords: 4})
	data[8] |= 0x40 // a future stream-flag bit
	path := filepath.Join(t.TempDir(), "future.trace")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, p := range []struct {
		name string
		do   func() error
	}{
		{"NewReader", func() error { _, err := NewReader(bytes.NewReader(data)); return err }},
		{"LoadArena", func() error { _, err := LoadArena(bytes.NewReader(data)); return err }},
		{"LoadArenaFile", func() error { _, err := LoadArenaFile(path); return err }},
		{"OpenMapArena", func() error { _, err := OpenMapArena(path); return err }},
		{"OpenAtChunk", func() error { _, err := OpenAtChunk(path, 0); return err }},
		{"OpenSlab", func() error { _, err := OpenSlab(path, 1); return err }},
	} {
		if err := p.do(); !errors.Is(err, ErrHeader) {
			t.Errorf("%s: error %v, want ErrHeader", p.name, err)
		}
	}
}

// TestCompatEmptyTrace pins the degenerate container: zero records is
// legal in every variant (an indexed empty file carries a 0-entry
// index), reads back empty everywhere, and stays bit-identical.
func TestCompatEmptyTrace(t *testing.T) {
	for _, v := range compatVariants {
		t.Run(v.name, func(t *testing.T) {
			data := v.write(t, nil)
			path := filepath.Join(t.TempDir(), "empty.trace")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			a, err := LoadArenaFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if a.Len() != 0 {
				t.Errorf("empty trace loaded %d records", a.Len())
			}
			if v.v1 || !v.o.Compress {
				ma, err := OpenMapArena(path)
				if err != nil {
					t.Fatal(err)
				}
				if ma.Len() != 0 {
					t.Errorf("empty trace mapped %d records", ma.Len())
				}
				ma.Close()
			}
			if !v.v1 && v.o.Index {
				fc, err := OpenAtChunk(path, 0)
				if err != nil {
					t.Fatal(err)
				}
				if _, ok := fc.Next(); ok {
					t.Error("empty indexed trace produced a record")
				}
				if err := fc.Err(); err != nil {
					t.Fatal(err)
				}
				fc.Close()
			}
		})
	}
}
