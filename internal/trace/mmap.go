package trace

import (
	"errors"
	"fmt"
	"os"
)

// MapArena is the mmap-backed counterpart of Arena: instead of
// materialising a 16 B/record slab it maps the trace file's validated
// on-disk records (12 B each) and decodes them on cursor read, chunk
// windows at a time. OpenMapArena validates the whole container once —
// header, framing (from the chunk index when present, a frame walk
// otherwise), chunk CRCs, reserved record flag bits, trailer and index
// — so cursors replay a proven-clean byte range with an infallible
// decode and the exact Cursor/SliceBatcher contract slab arenas offer.
// The records stay in the page cache, shared between arenas, cursors
// and processes, which is what makes very large traces replayable
// without duplicating them on the heap. A MapArena is immutable and
// safe for any number of concurrent cursors; Close unmaps it.
type MapArena struct {
	data   []byte // the whole mapped (or, on fallback, read) file
	chunks []mapChunk
	n      int
	phased bool

	unmap func() error // nil once closed or when nothing to release
}

// mapChunk locates one run of consecutive records inside the mapped
// bytes.
type mapChunk struct {
	off   int // byte offset of the first record in data
	count int // records in the run
	start int // cumulative record index of the run's first record
}

// OpenMapArena maps a trace file for in-place replay. The container is
// fully validated before the arena is returned; corrupt files are
// rejected with the same region sentinels the streaming reader uses.
// Only containers whose record bytes are addressable on disk are
// mappable: v1 and uncompressed v2 qualify, gzip bodies are rejected
// with ErrNotMappable (use LoadArenaFile or OpenSlab, which fall back
// to slab decoding).
func OpenMapArena(path string) (*MapArena, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if !st.Mode().IsRegular() {
		return nil, fmt.Errorf("%s: %w: not a regular file", path, ErrNotMappable)
	}
	meta, err := readFileMeta(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if meta.compressed {
		return nil, fmt.Errorf("%s: %w: gzip body has no addressable records", path, ErrNotMappable)
	}
	data, unmap, err := mapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("%s: %w: %v", path, ErrNotMappable, err)
	}
	a := &MapArena{data: data, phased: meta.phases, unmap: unmap}
	if err := a.validate(meta); err != nil {
		a.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// validate walks the mapped container once, building the chunk table
// and proving every byte cursors will later decode: v1 is one flat
// record run, v2 is walked frame by frame — against the index when
// present (offsets, counts and phase ranges already validated by
// readFileMeta, CRCs and record bytes checked here) or by raw frame
// walk when not.
func (a *MapArena) validate(meta *fileMeta) error {
	if meta.version == traceVersionV1 {
		// readFileMeta proved the geometry and trailer; the record bytes
		// remain to be checked.
		n := int(meta.total)
		for i := 0; i < n; i++ {
			rec := a.data[8+i*recordBytes:]
			if _, err := decodeRecord(rec, false); err != nil {
				return fmt.Errorf("%w (record %d)", err, i)
			}
		}
		a.chunks = []mapChunk{{off: 8, count: n}}
		a.n = n
		return nil
	}
	var scratch chunkScratch
	if meta.indexed {
		a.chunks = make([]mapChunk, 0, len(meta.entries))
		for i, e := range meta.entries {
			if err := a.validateChunk(meta, e, i, &scratch); err != nil {
				return err
			}
			a.chunks = append(a.chunks, mapChunk{off: int(e.Offset) + 4, count: e.Count, start: a.n})
			a.n += e.Count
		}
		return nil
	}
	// No index: walk the chunk frames. This re-derives exactly the
	// framing the streaming reader would, including the end marker,
	// trailer and the no-trailing-data rule.
	off := int64(v2HeaderBytes)
	var total uint64
	for i := 0; ; i++ {
		if off+4 > int64(len(a.data)) {
			return fmt.Errorf("trace: %w: chunk header after %d records", ErrTruncated, total)
		}
		n := int(le32(a.data[off:]))
		if n == 0 {
			if off+v2EndBytes > int64(len(a.data)) {
				return fmt.Errorf("trace: %w: trailer after %d records", ErrTruncated, total)
			}
			if got := le64(a.data[off+4:]); got != total {
				return fmt.Errorf("trace: %w: trailer count %d, mapped %d records (truncated file?)", ErrTrailer, got, total)
			}
			if off+v2EndBytes != int64(len(a.data)) {
				return fmt.Errorf("trace: %w: trailing data after trailer", ErrTrailer)
			}
			return nil
		}
		if n > meta.chunkCap {
			return fmt.Errorf("trace: %w: chunk of %d records exceeds declared capacity %d", ErrChunk, n, meta.chunkCap)
		}
		// Synthetic entry for the shared chunk validator; without a real
		// index there is no declared phase range to enforce.
		e := IndexEntry{Offset: off, Count: n}
		if meta.phases {
			e.MaxPhase = 0xFF
		}
		if e.Offset+e.frameBytes(meta.checksums) > int64(len(a.data)) {
			return fmt.Errorf("trace: %w: chunk after %d records", ErrTruncated, total)
		}
		if err := a.validateChunk(meta, e, i, &scratch); err != nil {
			return err
		}
		a.chunks = append(a.chunks, mapChunk{off: int(off) + 4, count: n, start: a.n})
		a.n += n
		total += uint64(n)
		off += e.frameBytes(meta.checksums)
	}
}

// chunkScratch is the decode scratch validate reuses across chunks.
type chunkScratch struct {
	insts []Inst
	raw   []byte
}

// validateChunk checks one chunk frame in place: stored count, CRC when
// the stream carries checksums, reserved record flag bits, and the
// index's declared phase range when the chunk came from an index.
func (a *MapArena) validateChunk(meta *fileMeta, e IndexEntry, chunkIdx int, s *chunkScratch) error {
	var err error
	s.insts, s.raw, err = meta.decodeChunkAt(noCopyReaderAt{a.data}, e, chunkIdx, s.insts[:0], s.raw)
	return err
}

// noCopyReaderAt adapts the mapped bytes to io.ReaderAt so chunk
// validation shares decodeChunkAt with the file-backed paths.
type noCopyReaderAt struct{ data []byte }

func (r noCopyReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(r.data)) {
		return 0, fmt.Errorf("offset %d outside mapped %d bytes", off, len(r.data))
	}
	n := copy(p, r.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("short read at offset %d", off)
	}
	return n, nil
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64(b []byte) uint64 {
	return uint64(le32(b)) | uint64(le32(b[4:]))<<32
}

// Len implements Slab.
func (a *MapArena) Len() int { return a.n }

// HasPhases implements Slab.
func (a *MapArena) HasPhases() bool { return a.phased }

// NewCursor implements Slab: a fresh replay over the mapped records
// from the first instruction. Cursors are independent and safe to use
// concurrently (each decodes into its own buffer); a cursor must not
// outlive the arena's Close.
func (a *MapArena) NewCursor() SliceBatcher {
	return &MapCursor{a: a, buf: make([]Inst, mapCursorBatch)}
}

// Close unmaps the file. Cursors must not be used afterwards. Close is
// idempotent.
func (a *MapArena) Close() error {
	if a.unmap == nil {
		return nil
	}
	u := a.unmap
	a.unmap = nil
	a.data = nil
	a.chunks = nil
	return u()
}

// mapCursorBatch is the per-cursor decode window: one NextSlice's worth
// of records decoded out of the mapped bytes. It matches the cpu
// package's replay batch so the common case is exactly one decode per
// NextSlice call.
const mapCursorBatch = 1024

// MapCursor is one replay position over a MapArena. It decodes records
// out of the mapped bytes into a private buffer window by window;
// NextSlice returns views of that buffer (read-only, not retained
// across calls, per the SliceBatcher contract). The decode cannot fail:
// the arena validated every record at open time. A MapCursor must not
// be shared between goroutines.
type MapCursor struct {
	a   *MapArena
	pos int // next record index, arena-wide

	chunk int // index into a.chunks of the chunk holding pos
	buf   []Inst
}

// decodeInto decodes up to max records starting at c.pos into dst,
// returning how many were produced. dst must hold max records.
func (c *MapCursor) decodeInto(dst []Inst, max int) int {
	n := 0
	for n < max && c.pos < c.a.n {
		// Advance to the chunk containing pos (chunks are in order and
		// replay is forward-only, so this is amortised O(1)).
		for c.pos >= c.a.chunks[c.chunk].start+c.a.chunks[c.chunk].count {
			c.chunk++
		}
		ch := c.a.chunks[c.chunk]
		i := c.pos - ch.start
		take := ch.count - i
		if take > max-n {
			take = max - n
		}
		recs := c.a.data[ch.off+i*recordBytes : ch.off+(i+take)*recordBytes]
		out := dst[n : n+take]
		// Inline decode of the validated records: the open-time walk
		// proved every flag byte, so no error path — this loop is the
		// replay hot path that keeps mmap replay near slab replay.
		for k := range out {
			rec := recs[k*recordBytes : k*recordBytes+recordBytes : k*recordBytes+recordBytes]
			flags := rec[8]
			out[k] = Inst{
				PC:       le32(rec[0:4]),
				Addr:     le32(rec[4:8]),
				IsLoad:   flags&flagLoad != 0,
				IsStore:  flags&flagStore != 0,
				IsBranch: flags&flagBranch != 0,
				Taken:    flags&flagTaken != 0,
				UseDist:  rec[9],
			}
		}
		if c.a.phased {
			for k := range out {
				out[k].Phase = recs[k*recordBytes+10]
			}
		}
		n += take
		c.pos += take
	}
	return n
}

// Next implements Stream.
func (c *MapCursor) Next() (Inst, bool) {
	if c.pos >= c.a.n {
		return Inst{}, false
	}
	var one [1]Inst
	c.decodeInto(one[:], 1)
	return one[0], true
}

// NextBatch implements BatchStream.
func (c *MapCursor) NextBatch(buf []Inst) int {
	return c.decodeInto(buf, len(buf))
}

// NextSlice implements SliceBatcher: records are decoded into the
// cursor's private window and a view of it is returned.
func (c *MapCursor) NextSlice(max int) []Inst {
	if max > len(c.buf) {
		c.buf = make([]Inst, max)
	}
	n := c.decodeInto(c.buf, max)
	return c.buf[:n]
}

// HasPhases implements PhaseAnnotated.
func (c *MapCursor) HasPhases() bool { return c.a.phased }

// Reset rewinds the cursor to the start of the arena.
func (c *MapCursor) Reset() { c.pos, c.chunk = 0, 0 }

// isUnmappable classifies errors that mean "valid container, cannot
// map" — OpenSlab falls back to slab loading on them rather than
// failing.
func isUnmappable(err error) bool {
	return errors.Is(err, ErrNotMappable)
}
